package graph

import (
	"math"
	"math/rand/v2"
	"slices"
)

// This file provides the synthetic graph generators that stand in for the
// paper's real datasets (see DESIGN.md §4). All generators are deterministic
// given a seed and always return a connected graph (a spanning backbone is
// added when random wiring leaves components behind).

// NewRand returns the repository-wide deterministic PRNG for a seed.
func NewRand(seed uint64) *rand.Rand {
	return rand.New(NewPCG(seed))
}

// NewPCG returns the PCG source NewRand wraps, for callers that keep the
// source around to reseed it per deterministic work item (see SeedPCG).
func NewPCG(seed uint64) *rand.PCG {
	return rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)
}

// SeedPCG reseeds p exactly as NewPCG(seed) would initialize it, so a stream
// restarted mid-flight is indistinguishable from a freshly built one. Work
// distributed across goroutines can thereby draw per-item streams (seed
// derived from the item index) and produce output independent of the worker
// count and schedule.
func SeedPCG(p *rand.PCG, seed uint64) {
	p.Seed(seed, seed^0x9e3779b97f4a7c15)
}

// ItemSeed derives the canonical per-item seed for deterministic fan-out:
// item i of a computation seeded with base draws from ItemSeed(base, i).
// The golden-ratio multiplier decorrelates consecutive indices.
func ItemSeed(base uint64, i int) uint64 {
	return base ^ (uint64(i)+1)*0x9e3779b97f4a7c15
}

// ErdosRenyi samples G(n, m): m distinct uniform random edges over n nodes,
// then connects stray components.
func ErdosRenyi(n, m int, rng *rand.Rand) *Graph {
	b := NewBuilder(n, 0)
	seen := make(map[int64]struct{}, m)
	maxEdges := int64(n) * int64(n-1) / 2
	if int64(m) > maxEdges {
		m = int(maxEdges)
	}
	for len(seen) < m {
		u := NodeID(rng.IntN(n))
		v := NodeID(rng.IntN(n))
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		key := int64(u)*int64(n) + int64(v)
		if _, ok := seen[key]; ok {
			continue
		}
		seen[key] = struct{}{}
		mustAddEdge(b, u, v)
	}
	return connect(b.Build(), rng)
}

// BarabasiAlbert grows a preferential-attachment graph: each new node
// attaches to mAttach existing nodes chosen proportionally to degree. The
// result is connected by construction and has hub-dominated degrees.
func BarabasiAlbert(n, mAttach int, rng *rand.Rand) *Graph {
	if mAttach < 1 {
		mAttach = 1
	}
	b := NewBuilder(n, 0)
	// Repeated-endpoint list implements preferential attachment in O(1).
	var targets []NodeID
	start := mAttach + 1
	if start > n {
		start = n
	}
	for u := 0; u < start; u++ {
		for v := 0; v < u; v++ {
			mustAddEdge(b, NodeID(u), NodeID(v))
			targets = append(targets, NodeID(u), NodeID(v))
		}
	}
	for u := start; u < n; u++ {
		chosen := make([]NodeID, 0, mAttach)
		for len(chosen) < mAttach {
			t := targets[rng.IntN(len(targets))]
			if !slices.Contains(chosen, t) {
				chosen = append(chosen, t)
			}
		}
		for _, t := range chosen {
			mustAddEdge(b, NodeID(u), t)
			targets = append(targets, NodeID(u), t)
		}
	}
	return b.Build()
}

// PreferentialMixed grows a scale-free graph where each new node attaches
// to a single degree-biased target with probability p1 and to burst targets
// otherwise. p1 near 1 yields star-burst, retweet-like topologies: many
// degree-1 leaves hanging off heavy hubs, which is what makes agglomerative
// dendrograms on such graphs deep and skewed.
func PreferentialMixed(n int, p1 float64, burst int, rng *rand.Rand) *Graph {
	if burst < 1 {
		burst = 1
	}
	b := NewBuilder(n, 0)
	targets := []NodeID{0, 1, 0, 1}
	mustAddEdge(b, 0, 1)
	for u := 2; u < n; u++ {
		attach := 1
		if rng.Float64() >= p1 {
			attach = burst
		}
		chosen := make([]NodeID, 0, attach)
		for len(chosen) < attach {
			t := targets[rng.IntN(len(targets))]
			if !slices.Contains(chosen, t) {
				chosen = append(chosen, t)
			}
			if len(chosen) >= u { // cannot pick more distinct targets
				break
			}
		}
		for _, t := range chosen {
			mustAddEdge(b, NodeID(u), t)
			targets = append(targets, NodeID(u), t)
		}
	}
	return b.Build()
}

// HubBurst grows a retweet-like network: numHubs designated mega-hubs each
// collect a share of degree-1 "retweeter" leaves (a node becomes a hub leaf
// with probability hubProb, attaching by a single edge to a uniformly
// chosen hub), while the remaining nodes wire preferentially like
// PreferentialMixed(p1, burst). The hub caterpillars are what give real
// retweet graphs their deeply skewed agglomerative dendrograms.
func HubBurst(n, numHubs int, hubProb, p1 float64, burst int, rng *rand.Rand) *Graph {
	if numHubs < 1 {
		numHubs = 1
	}
	if numHubs > n-1 {
		numHubs = n - 1
	}
	b := NewBuilder(n, 0)
	// Hubs are nodes 0..numHubs-1, wired in a path so the graph connects.
	for h := 1; h < numHubs; h++ {
		mustAddEdge(b, NodeID(h-1), NodeID(h))
	}
	targets := make([]NodeID, 0, 4*n)
	for h := 0; h < numHubs; h++ {
		targets = append(targets, NodeID(h))
	}
	for u := numHubs; u < n; u++ {
		if rng.Float64() < hubProb {
			mustAddEdge(b, NodeID(u), NodeID(rng.IntN(numHubs)))
			continue // pure leaf: not a future attachment target
		}
		attach := 1
		if rng.Float64() >= p1 {
			attach = burst
		}
		chosen := make([]NodeID, 0, attach)
		for len(chosen) < attach && len(chosen) < len(targets) {
			t := targets[rng.IntN(len(targets))]
			if !slices.Contains(chosen, t) {
				chosen = append(chosen, t)
			}
		}
		for _, t := range chosen {
			mustAddEdge(b, NodeID(u), t)
			targets = append(targets, NodeID(u), t)
		}
	}
	return b.Build()
}

// WattsStrogatz builds a ring lattice with k neighbors per side and rewires
// each edge with probability p, then connects stray components.
func WattsStrogatz(n, k int, p float64, rng *rand.Rand) *Graph {
	b := NewBuilder(n, 0)
	seen := make(map[int64]struct{})
	add := func(u, v NodeID) bool {
		if u == v {
			return false
		}
		if u > v {
			u, v = v, u
		}
		key := int64(u)*int64(n) + int64(v)
		if _, ok := seen[key]; ok {
			return false
		}
		seen[key] = struct{}{}
		mustAddEdge(b, u, v)
		return true
	}
	for u := 0; u < n; u++ {
		for j := 1; j <= k; j++ {
			v := (u + j) % n
			if rng.Float64() < p {
				for tries := 0; tries < 32; tries++ {
					if add(NodeID(u), NodeID(rng.IntN(n))) {
						break
					}
				}
			} else {
				add(NodeID(u), NodeID(v))
			}
		}
	}
	return connect(b.Build(), rng)
}

// PlantedPartitionSpec configures PlantedPartition.
type PlantedPartitionSpec struct {
	N             int     // number of nodes
	TargetM       int     // approximate number of edges
	NumComms      int     // number of planted ground-truth communities
	CommExponent  float64 // power-law exponent for community sizes (e.g. 1.5)
	IntraFraction float64 // fraction of edges placed inside communities (e.g. 0.8)
	HubBias       float64 // 0 = uniform endpoints; 1 = strongly preferential (skewed hubs)
	// PendantFraction is the fraction of each community's nodes attached by
	// a single hub-biased edge. Pendants make agglomerative dendrograms
	// caterpillar-like (one node absorbed at a time), reproducing the
	// hierarchy skew the paper observes on PubMed/Retweet.
	PendantFraction float64
}

// PlantedPartition generates a graph with power-law-sized ground-truth
// communities, mostly-intra-community wiring and optional hub bias, and
// returns the graph plus the community assignment of each node. This is the
// stand-in for the paper's citation/co-purchase/social datasets: what the
// evaluation depends on is community structure, attribute correlation (the
// caller assigns attributes per community) and degree skew.
func PlantedPartition(spec PlantedPartitionSpec, rng *rand.Rand) (*Graph, []int) {
	n := spec.N
	if spec.NumComms < 1 {
		spec.NumComms = 1
	}
	if spec.CommExponent <= 0 {
		spec.CommExponent = 1.5
	}
	sizes := powerLawSizes(n, spec.NumComms, spec.CommExponent, rng)
	comm := make([]int, n)
	members := make([][]NodeID, len(sizes))
	v := NodeID(0)
	for c, sz := range sizes {
		members[c] = make([]NodeID, 0, sz)
		for i := 0; i < sz; i++ {
			comm[v] = c
			members[c] = append(members[c], v)
			v++
		}
	}

	b := NewBuilder(n, 0)
	seen := make(map[int64]struct{}, spec.TargetM)
	// Hub bias: endpoint sampled as floor(U^(1/(1+bias*3)) * len) skews toward
	// low indices within each community, creating stable hubs.
	pick := func(set []NodeID) NodeID {
		if spec.HubBias <= 0 {
			return set[rng.IntN(len(set))]
		}
		x := math.Pow(rng.Float64(), 1+3*spec.HubBias)
		return set[int(x*float64(len(set)))]
	}
	add := func(u, w NodeID) bool {
		if u == w {
			return false
		}
		if u > w {
			u, w = w, u
		}
		key := int64(u)*int64(n) + int64(w)
		if _, ok := seen[key]; ok {
			return false
		}
		seen[key] = struct{}{}
		mustAddEdge(b, u, w)
		return true
	}
	// Split each community into a wired core and pendant nodes; pendants get
	// exactly one hub-biased edge into the core.
	cores := make([][]NodeID, len(members))
	edges := 0
	for c, set := range members {
		nPend := int(spec.PendantFraction * float64(len(set)))
		if nPend > len(set)-1 {
			nPend = len(set) - 1
		}
		core := set[:len(set)-nPend]
		cores[c] = core
		// Spanning path within the core guarantees intra-connectivity.
		for i := 1; i < len(core); i++ {
			if add(core[i-1], core[i]) {
				edges++
			}
		}
		for _, p := range set[len(set)-nPend:] {
			if add(p, pick(core)) {
				edges++
			}
		}
	}
	intra := int(float64(spec.TargetM) * spec.IntraFraction)
	for tries := 0; edges < intra && tries < 20*spec.TargetM; tries++ {
		set := cores[weightedCommunity(sizes, rng)]
		if len(set) < 2 {
			continue
		}
		if add(pick(set), pick(set)) {
			edges++
		}
	}
	for tries := 0; edges < spec.TargetM && tries < 20*spec.TargetM; tries++ {
		c1 := weightedCommunity(sizes, rng)
		c2 := weightedCommunity(sizes, rng)
		if c1 == c2 || len(cores[c1]) == 0 || len(cores[c2]) == 0 {
			continue
		}
		if add(pick(cores[c1]), pick(cores[c2])) {
			edges++
		}
	}
	return connect(b.Build(), rng), comm
}

// powerLawSizes splits n into k parts with sizes proportional to
// rank^(-exponent), each at least 2 where possible.
func powerLawSizes(n, k int, exponent float64, rng *rand.Rand) []int {
	if k > n {
		k = n
	}
	weights := make([]float64, k)
	sum := 0.0
	for i := range weights {
		weights[i] = math.Pow(float64(i+1), -exponent)
		sum += weights[i]
	}
	sizes := make([]int, k)
	used := 0
	for i := range sizes {
		sizes[i] = int(float64(n) * weights[i] / sum)
		if sizes[i] < 1 {
			sizes[i] = 1
		}
		used += sizes[i]
	}
	// Fix rounding drift by adjusting the largest communities.
	i := 0
	for used < n {
		sizes[i%k]++
		used++
		i++
	}
	for used > n {
		j := i % k
		if sizes[j] > 1 {
			sizes[j]--
			used--
		}
		i++
	}
	return sizes
}

func weightedCommunity(sizes []int, rng *rand.Rand) int {
	total := 0
	for _, s := range sizes {
		total += s
	}
	x := rng.IntN(total)
	for c, s := range sizes {
		if x < s {
			return c
		}
		x -= s
	}
	return len(sizes) - 1
}

// connect links the components of g (if more than one) by adding one random
// edge between consecutive components, returning a connected graph.
func connect(g *Graph, rng *rand.Rand) *Graph {
	comps := g.Components()
	if len(comps) <= 1 {
		return g
	}
	b := NewBuilder(g.N(), g.NumAttrs())
	g.ForEachEdge(func(u, v NodeID, w float64) { _ = b.AddWeightedEdge(u, v, w) })
	for v := NodeID(0); v < NodeID(g.N()); v++ {
		if as := g.Attrs(v); len(as) > 0 {
			_ = b.SetAttrs(v, as...)
		}
	}
	for i := 1; i < len(comps); i++ {
		u := comps[i-1][rng.IntN(len(comps[i-1]))]
		v := comps[i][rng.IntN(len(comps[i]))]
		mustAddEdge(b, u, v)
	}
	return b.Build()
}

func mustAddEdge(b *Builder, u, v NodeID) {
	if err := b.AddEdge(u, v); err != nil {
		panic(err) // generator bug: endpoints are constructed in range
	}
}
