// Package graph provides the attributed-graph substrate used throughout the
// COD library: a compact CSR (compressed sparse row) representation of an
// undirected graph whose nodes carry categorical attributes and whose edges
// carry optional weights.
//
// The representation is immutable after construction (see Builder), which
// lets hierarchies, influence samplers and indexes share one Graph value
// across goroutines without locking.
package graph

import (
	"fmt"
	"slices"
)

// NodeID identifies a node. Nodes of a Graph with n nodes are 0..n-1.
type NodeID = int32

// AttrID identifies a categorical attribute. Attributes of a Graph with a
// attributes are 0..a-1.
type AttrID = int32

// Graph is an undirected attributed graph in CSR form. The zero value is an
// empty graph; use a Builder to construct non-trivial graphs.
type Graph struct {
	off     []int32   // off[v]..off[v+1] bounds v's slice of adj/wts; len n+1
	adj     []NodeID  // concatenated neighbor lists, each sorted ascending
	wts     []float64 // parallel to adj; nil means every edge has weight 1
	attrOff []int32   // attrOff[v]..attrOff[v+1] bounds v's attribute slice
	attrs   []AttrID  // concatenated per-node attribute lists, sorted
	numAttr int       // size of the attribute universe
	m       int       // number of undirected edges
}

// N returns the number of nodes.
func (g *Graph) N() int {
	if g.off == nil {
		return 0
	}
	return len(g.off) - 1
}

// M returns the number of undirected edges.
func (g *Graph) M() int { return g.m }

// NumAttrs returns the size of the attribute universe |A|.
func (g *Graph) NumAttrs() int { return g.numAttr }

// Degree returns the number of neighbors of v.
func (g *Graph) Degree(v NodeID) int { return int(g.off[v+1] - g.off[v]) }

// Neighbors returns the sorted neighbor list of v. The returned slice aliases
// the graph's storage and must not be modified.
func (g *Graph) Neighbors(v NodeID) []NodeID { return g.adj[g.off[v]:g.off[v+1]] }

// Weights returns edge weights parallel to Neighbors(v), or nil when the
// graph is unweighted (all weights 1).
func (g *Graph) Weights(v NodeID) []float64 {
	if g.wts == nil {
		return nil
	}
	return g.wts[g.off[v]:g.off[v+1]]
}

// Weighted reports whether the graph carries explicit edge weights.
func (g *Graph) Weighted() bool { return g.wts != nil }

// EdgeWeight returns the weight of edge (u,v), or 0 if the edge is absent.
func (g *Graph) EdgeWeight(u, v NodeID) float64 {
	i, ok := g.findNeighbor(u, v)
	if !ok {
		return 0
	}
	if g.wts == nil {
		return 1
	}
	return g.wts[i]
}

// HasEdge reports whether (u,v) is an edge.
func (g *Graph) HasEdge(u, v NodeID) bool {
	_, ok := g.findNeighbor(u, v)
	return ok
}

// findNeighbor binary-searches v in u's neighbor list, returning the global
// adjacency index.
func (g *Graph) findNeighbor(u, v NodeID) (int, bool) {
	lo, hi := int(g.off[u]), int(g.off[u+1])
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case g.adj[mid] < v:
			lo = mid + 1
		case g.adj[mid] > v:
			hi = mid
		default:
			return mid, true
		}
	}
	return 0, false
}

// Attrs returns the sorted attribute list of v. The returned slice aliases
// the graph's storage and must not be modified.
func (g *Graph) Attrs(v NodeID) []AttrID {
	if g.attrOff == nil {
		return nil
	}
	return g.attrs[g.attrOff[v]:g.attrOff[v+1]]
}

// HasAttr reports whether node v carries attribute a.
func (g *Graph) HasAttr(v NodeID, a AttrID) bool {
	as := g.Attrs(v)
	lo, hi := 0, len(as)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case as[mid] < a:
			lo = mid + 1
		case as[mid] > a:
			hi = mid
		default:
			return true
		}
	}
	return false
}

// AttrNodes returns all nodes carrying attribute a, in ascending order.
func (g *Graph) AttrNodes(a AttrID) []NodeID {
	var out []NodeID
	for v := NodeID(0); v < NodeID(g.N()); v++ {
		if g.HasAttr(v, a) {
			out = append(out, v)
		}
	}
	return out
}

// String summarizes the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d attrs=%d weighted=%t}", g.N(), g.M(), g.numAttr, g.Weighted())
}

// ForEachEdge calls fn once per undirected edge (u < v) with its weight.
func (g *Graph) ForEachEdge(fn func(u, v NodeID, w float64)) {
	for u := NodeID(0); u < NodeID(g.N()); u++ {
		ns := g.Neighbors(u)
		ws := g.Weights(u)
		for i, v := range ns {
			if u < v {
				w := 1.0
				if ws != nil {
					w = ws[i]
				}
				fn(u, v, w)
			}
		}
	}
}

// BFS traverses the component of src, invoking visit for every reached node
// (including src). It allocates a visited bitmap per call.
func (g *Graph) BFS(src NodeID, visit func(v NodeID)) {
	seen := make([]bool, g.N())
	queue := []NodeID{src}
	seen[src] = true
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		visit(v)
		for _, u := range g.Neighbors(v) {
			if !seen[u] {
				seen[u] = true
				queue = append(queue, u)
			}
		}
	}
}

// Component returns the connected component containing src, ascending order.
func (g *Graph) Component(src NodeID) []NodeID {
	var comp []NodeID
	g.BFS(src, func(v NodeID) { comp = append(comp, v) })
	sortNodeIDs(comp)
	return comp
}

// Connected reports whether the graph is connected (true for empty graphs).
func (g *Graph) Connected() bool {
	n := g.N()
	if n == 0 {
		return true
	}
	count := 0
	g.BFS(0, func(NodeID) { count++ })
	return count == n
}

// Components returns all connected components, each sorted ascending, in
// order of their smallest member.
func (g *Graph) Components() [][]NodeID {
	n := g.N()
	seen := make([]bool, n)
	var comps [][]NodeID
	for s := NodeID(0); s < NodeID(n); s++ {
		if seen[s] {
			continue
		}
		var comp []NodeID
		queue := []NodeID{s}
		seen[s] = true
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			comp = append(comp, v)
			for _, u := range g.Neighbors(v) {
				if !seen[u] {
					seen[u] = true
					queue = append(queue, u)
				}
			}
		}
		sortNodeIDs(comp)
		comps = append(comps, comp)
	}
	return comps
}

func sortNodeIDs(s []NodeID) { slices.Sort(s) }
