package graph

import (
	"bytes"
	"testing"
	"testing/quick"
)

func mustGraph(t *testing.T, n int, edges [][2]NodeID) *Graph {
	t.Helper()
	g, err := FromEdges(n, edges)
	if err != nil {
		t.Fatalf("FromEdges: %v", err)
	}
	return g
}

// paperGraph builds the 10-node, 15-edge example graph of Fig. 2 (edges
// chosen to match the figure's structure closely enough for unit tests).
func paperGraph(t *testing.T) *Graph {
	t.Helper()
	return mustGraph(t, 10, [][2]NodeID{
		{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3},
		{2, 4}, {3, 5}, {3, 7}, {6, 7}, {6, 8}, {7, 8},
		{4, 5}, {4, 6}, {8, 9},
	})
}

func TestBuilderBasics(t *testing.T) {
	g := paperGraph(t)
	if g.N() != 10 {
		t.Errorf("N = %d, want 10", g.N())
	}
	if g.M() != 15 {
		t.Errorf("M = %d, want 15", g.M())
	}
	if g.Degree(0) != 3 {
		t.Errorf("deg(0) = %d, want 3", g.Degree(0))
	}
	if !g.HasEdge(0, 3) || !g.HasEdge(3, 0) {
		t.Error("edge (0,3) missing")
	}
	if g.HasEdge(0, 9) {
		t.Error("edge (0,9) should not exist")
	}
	if g.Weighted() {
		t.Error("unweighted graph reports Weighted")
	}
}

func TestBuilderRejectsBadInput(t *testing.T) {
	b := NewBuilder(3, 2)
	if err := b.AddEdge(1, 1); err == nil {
		t.Error("self loop accepted")
	}
	if err := b.AddEdge(0, 3); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if err := b.AddWeightedEdge(0, 1, -2); err == nil {
		t.Error("negative weight accepted")
	}
	if err := b.SetAttrs(0, 5); err == nil {
		t.Error("out-of-range attribute accepted")
	}
	if err := b.SetAttrs(7, 0); err == nil {
		t.Error("out-of-range node attribute accepted")
	}
}

func TestBuilderMergesDuplicates(t *testing.T) {
	b := NewBuilder(3, 0)
	for i := 0; i < 3; i++ {
		if err := b.AddWeightedEdge(0, 1, 2); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	if g.M() != 1 {
		t.Fatalf("M = %d, want 1 after merging", g.M())
	}
	if w := g.EdgeWeight(0, 1); w != 6 {
		t.Errorf("merged weight = %g, want 6", w)
	}
}

func TestNeighborsSorted(t *testing.T) {
	g := paperGraph(t)
	for v := NodeID(0); v < 10; v++ {
		ns := g.Neighbors(v)
		for i := 1; i < len(ns); i++ {
			if ns[i-1] >= ns[i] {
				t.Fatalf("neighbors of %d not strictly sorted: %v", v, ns)
			}
		}
	}
}

func TestAttrs(t *testing.T) {
	b := NewBuilder(4, 3)
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(2, 3); err != nil {
		t.Fatal(err)
	}
	if err := b.SetAttrs(0, 2, 0, 2); err != nil { // duplicates removed
		t.Fatal(err)
	}
	if err := b.AddAttr(1, 1); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	if got := g.Attrs(0); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("Attrs(0) = %v, want [0 2]", got)
	}
	if !g.HasAttr(0, 2) || g.HasAttr(0, 1) {
		t.Error("HasAttr wrong for node 0")
	}
	if nodes := g.AttrNodes(1); len(nodes) != 1 || nodes[0] != 1 {
		t.Errorf("AttrNodes(1) = %v", nodes)
	}
}

func TestComponents(t *testing.T) {
	g := mustGraph(t, 6, [][2]NodeID{{0, 1}, {1, 2}, {3, 4}})
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("components = %d, want 3", len(comps))
	}
	if g.Connected() {
		t.Error("disconnected graph reports connected")
	}
	if got := g.Component(4); len(got) != 2 || got[0] != 3 {
		t.Errorf("Component(4) = %v", got)
	}
	conn := paperGraph(t)
	if !conn.Connected() {
		t.Error("paper graph should be connected")
	}
}

func TestInduce(t *testing.T) {
	g := paperGraph(t)
	sub := Induce(g, []NodeID{0, 1, 2, 3, 4})
	if sub.G.N() != 5 {
		t.Fatalf("subgraph N = %d", sub.G.N())
	}
	// edges within {0..4}: (0,1)(0,2)(0,3)(1,2)(1,3)(2,3)(2,4) = 7
	if sub.G.M() != 7 {
		t.Errorf("subgraph M = %d, want 7", sub.G.M())
	}
	if sub.Local(9) != -1 || !sub.Contains(4) {
		t.Error("membership mapping broken")
	}
	if sub.ToParent[int(sub.Local(3))] != 3 {
		t.Error("Local/ToParent not inverse")
	}
}

func TestReweight(t *testing.T) {
	g := paperGraph(t)
	gl := Reweight(g, func(u, v NodeID, w float64) float64 {
		if u == 0 || v == 0 {
			return 5
		}
		return w
	})
	if gl.M() != g.M() {
		t.Fatalf("edge count changed: %d vs %d", gl.M(), g.M())
	}
	if w := gl.EdgeWeight(0, 1); w != 5 {
		t.Errorf("weight(0,1) = %g, want 5", w)
	}
	if w := gl.EdgeWeight(8, 9); w != 1 {
		t.Errorf("weight(8,9) = %g, want 1", w)
	}
}

func TestMetrics(t *testing.T) {
	g := paperGraph(t)
	clique := []NodeID{0, 1, 2, 3}
	if d := TopologyDensity(g, clique); d != 1.0 {
		t.Errorf("density of 4-clique = %g, want 1", d)
	}
	if e := EdgesWithin(g, clique); e != 6 {
		t.Errorf("EdgesWithin = %d, want 6", e)
	}
	if d := TopologyDensity(g, []NodeID{0}); d != 0 {
		t.Errorf("density singleton = %g, want 0", d)
	}
	whole := make([]NodeID, 10)
	for i := range whole {
		whole[i] = NodeID(i)
	}
	if c := Conductance(g, whole); c != 0 {
		t.Errorf("conductance of everything = %g, want 0", c)
	}
	c := Conductance(g, clique)
	if c <= 0 || c >= 1 {
		t.Errorf("conductance of clique = %g, want in (0,1)", c)
	}
}

func TestAttributeDensity(t *testing.T) {
	b := NewBuilder(4, 2)
	_ = b.AddEdge(0, 1)
	_ = b.SetAttrs(0, 1)
	_ = b.SetAttrs(1, 1)
	_ = b.SetAttrs(2, 0)
	g := b.Build()
	if d := AttributeDensity(g, []NodeID{0, 1, 2, 3}, 1); d != 0.5 {
		t.Errorf("attr density = %g, want 0.5", d)
	}
	if d := AttributeDensity(g, nil, 1); d != 0 {
		t.Errorf("attr density empty = %g, want 0", d)
	}
}

func TestTriangleCount(t *testing.T) {
	tri := mustGraph(t, 3, [][2]NodeID{{0, 1}, {1, 2}, {0, 2}})
	if c := TriangleCount(tri); c != 1 {
		t.Errorf("triangle count = %d, want 1", c)
	}
	k4 := mustGraph(t, 4, [][2]NodeID{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}})
	if c := TriangleCount(k4); c != 4 {
		t.Errorf("K4 triangles = %d, want 4", c)
	}
	path := mustGraph(t, 3, [][2]NodeID{{0, 1}, {1, 2}})
	if c := TriangleCount(path); c != 0 {
		t.Errorf("path triangles = %d, want 0", c)
	}
}

func TestRoundTripIO(t *testing.T) {
	b := NewBuilder(5, 3)
	_ = b.AddEdge(0, 1)
	_ = b.AddWeightedEdge(1, 2, 2.5)
	_ = b.AddEdge(3, 4)
	_ = b.SetAttrs(0, 0, 2)
	_ = b.SetAttrs(4, 1)
	g := b.Build()

	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	g2, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if g2.N() != g.N() || g2.M() != g.M() || g2.NumAttrs() != g.NumAttrs() {
		t.Fatalf("shape mismatch: %v vs %v", g2, g)
	}
	if w := g2.EdgeWeight(1, 2); w != 2.5 {
		t.Errorf("weight lost: %g", w)
	}
	if !g2.HasAttr(0, 2) || !g2.HasAttr(4, 1) || g2.HasAttr(4, 0) {
		t.Error("attributes lost in round trip")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"",
		"not-a-graph\n1 0 0 0\n",
		"cod-graph 1\nbroken\n",
		"cod-graph 1\n2 1 0 0\ne 0 5\n",
		"cod-graph 1\n2 2 0 0\ne 0 1\n", // edge count mismatch
		"cod-graph 1\n2 0 0 0\nz 1 2\n",
	} {
		if _, err := Read(bytes.NewBufferString(bad)); err == nil {
			t.Errorf("Read accepted %q", bad)
		}
	}
}

func TestGeneratorsConnected(t *testing.T) {
	rng := NewRand(7)
	cases := map[string]*Graph{
		"erdos": ErdosRenyi(200, 400, rng),
		"ba":    BarabasiAlbert(200, 3, rng),
		"ws":    WattsStrogatz(200, 3, 0.1, rng),
	}
	g, comms := PlantedPartition(PlantedPartitionSpec{N: 200, TargetM: 600, NumComms: 8, IntraFraction: 0.8, HubBias: 0.4}, rng)
	cases["planted"] = g
	if len(comms) != 200 {
		t.Fatalf("planted comms length %d", len(comms))
	}
	for name, gg := range cases {
		if !gg.Connected() {
			t.Errorf("%s: not connected", name)
		}
		if gg.N() != 200 {
			t.Errorf("%s: N = %d", name, gg.N())
		}
		if gg.M() == 0 {
			t.Errorf("%s: no edges", name)
		}
	}
}

func TestPlantedPartitionIntraBias(t *testing.T) {
	rng := NewRand(11)
	g, comms := PlantedPartition(PlantedPartitionSpec{N: 400, TargetM: 1600, NumComms: 10, IntraFraction: 0.8, HubBias: 0.2}, rng)
	intra, inter := 0, 0
	g.ForEachEdge(func(u, v NodeID, _ float64) {
		if comms[u] == comms[v] {
			intra++
		} else {
			inter++
		}
	})
	if intra <= inter {
		t.Errorf("intra=%d should dominate inter=%d", intra, inter)
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	g1 := BarabasiAlbert(100, 2, NewRand(5))
	g2 := BarabasiAlbert(100, 2, NewRand(5))
	if g1.M() != g2.M() {
		t.Fatalf("nondeterministic edge count %d vs %d", g1.M(), g2.M())
	}
	for v := NodeID(0); v < 100; v++ {
		n1, n2 := g1.Neighbors(v), g2.Neighbors(v)
		if len(n1) != len(n2) {
			t.Fatalf("node %d degree differs", v)
		}
		for i := range n1 {
			if n1[i] != n2[i] {
				t.Fatalf("node %d adjacency differs", v)
			}
		}
	}
}

// Property: Induce preserves adjacency — for random graphs and random node
// subsets, an edge exists in the subgraph iff it exists in the parent.
func TestInduceProperty(t *testing.T) {
	rng := NewRand(13)
	check := func(seed uint16) bool {
		r := NewRand(uint64(seed))
		g := ErdosRenyi(40, 80, r)
		var nodes []NodeID
		for v := NodeID(0); v < 40; v++ {
			if rng.Float64() < 0.5 {
				nodes = append(nodes, v)
			}
		}
		sub := Induce(g, nodes)
		for i, pu := range sub.ToParent {
			for j, pv := range sub.ToParent {
				if sub.G.HasEdge(NodeID(i), NodeID(j)) != g.HasEdge(pu, pv) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: degree sums equal 2M for generated graphs.
func TestDegreeSumProperty(t *testing.T) {
	check := func(seed uint16) bool {
		r := NewRand(uint64(seed))
		g := ErdosRenyi(50+int(seed%50), 120, r)
		sum := 0
		for v := NodeID(0); v < NodeID(g.N()); v++ {
			sum += g.Degree(v)
		}
		return sum == 2*g.M()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestAvgAndMaxDegree(t *testing.T) {
	g := paperGraph(t)
	if got := AvgDegree(g); got != 3.0 { // 2*15/10
		t.Errorf("AvgDegree = %f, want 3", got)
	}
	if got := MaxDegree(g); got != 5 { // node 3: neighbors 0,1,2,5,7
		t.Errorf("MaxDegree = %d, want 5", got)
	}
	empty := &Graph{}
	if AvgDegree(empty) != 0 || MaxDegree(empty) != 0 {
		t.Error("empty graph degrees should be 0")
	}
}
