package graph

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Text format ("cod graph v1"):
//
//	cod-graph 1
//	<n> <m> <numAttrs> <weighted:0|1>
//	e <u> <v> [w]        (m lines)
//	a <v> <attr> ...     (one line per node that has attributes)
//
// Lines starting with '#' and blank lines are ignored on read.

// ReadMaxNodes bounds the node count Read accepts. The builder allocates
// per-node state before any edge line is parsed, so without a bound a
// 40-byte header demanding ~2 billion nodes forces gigabytes of allocation
// (a denial of service when reading untrusted files). The default admits
// graphs well beyond the paper's largest dataset; callers loading genuinely
// larger graphs can raise it before calling Read.
var ReadMaxNodes = 1 << 26

// WriteTo serializes g in the text format above and returns the number of
// bytes written.
func (g *Graph) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var total int64
	count := func(n int, err error) error {
		total += int64(n)
		return err
	}
	weighted := 0
	if g.Weighted() {
		weighted = 1
	}
	if err := count(fmt.Fprintf(bw, "cod-graph 1\n%d %d %d %d\n", g.N(), g.M(), g.NumAttrs(), weighted)); err != nil {
		return total, err
	}
	var werr error
	g.ForEachEdge(func(u, v NodeID, wt float64) {
		if werr != nil {
			return
		}
		if g.Weighted() {
			werr = count(fmt.Fprintf(bw, "e %d %d %g\n", u, v, wt))
		} else {
			werr = count(fmt.Fprintf(bw, "e %d %d\n", u, v))
		}
	})
	if werr != nil {
		return total, werr
	}
	for v := NodeID(0); v < NodeID(g.N()); v++ {
		as := g.Attrs(v)
		if len(as) == 0 {
			continue
		}
		sb := strings.Builder{}
		fmt.Fprintf(&sb, "a %d", v)
		for _, a := range as {
			fmt.Fprintf(&sb, " %d", a)
		}
		sb.WriteByte('\n')
		if err := count(bw.WriteString(sb.String())); err != nil {
			return total, err
		}
	}
	return total, bw.Flush()
}

// Read parses a graph in the text format written by WriteTo.
func Read(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	line := func() (string, bool) {
		for sc.Scan() {
			s := strings.TrimSpace(sc.Text())
			if s == "" || strings.HasPrefix(s, "#") {
				continue
			}
			return s, true
		}
		return "", false
	}
	hdr, ok := line()
	if !ok || !strings.HasPrefix(hdr, "cod-graph ") {
		return nil, fmt.Errorf("graph: missing cod-graph header")
	}
	meta, ok := line()
	if !ok {
		return nil, fmt.Errorf("graph: missing size line")
	}
	var n, m, na, weighted int
	if _, err := fmt.Sscanf(meta, "%d %d %d %d", &n, &m, &na, &weighted); err != nil {
		return nil, fmt.Errorf("graph: bad size line %q: %w", meta, err)
	}
	if n < 0 || m < 0 || na < 0 {
		return nil, fmt.Errorf("graph: negative size in header %q", meta)
	}
	if n > math.MaxInt32 || na > math.MaxInt32 {
		return nil, fmt.Errorf("graph: header %q exceeds the 32-bit id space", meta)
	}
	if n > ReadMaxNodes {
		return nil, fmt.Errorf("graph: header declares %d nodes, above ReadMaxNodes (%d)", n, ReadMaxNodes)
	}
	if maxM := int64(n) * int64(n-1) / 2; int64(m) > maxM {
		return nil, fmt.Errorf("graph: header declares %d edges, %d nodes admit at most %d", m, n, maxM)
	}
	if weighted != 0 && weighted != 1 {
		return nil, fmt.Errorf("graph: bad weighted flag in header %q", meta)
	}
	b := NewBuilder(n, na)
	edges := 0
	for {
		s, ok := line()
		if !ok {
			break
		}
		fields := strings.Fields(s)
		switch fields[0] {
		case "e":
			if len(fields) < 3 {
				return nil, fmt.Errorf("graph: bad edge line %q", s)
			}
			u, err1 := strconv.Atoi(fields[1])
			v, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("graph: bad edge line %q", s)
			}
			// Range-check before the int32 conversion: an id beyond the node
			// count must not wrap into range.
			if u < 0 || u >= n || v < 0 || v >= n {
				return nil, fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, n)
			}
			w := 1.0
			if len(fields) >= 4 {
				var err error
				if w, err = strconv.ParseFloat(fields[3], 64); err != nil {
					return nil, fmt.Errorf("graph: bad edge weight in %q", s)
				}
			}
			if err := b.AddWeightedEdge(NodeID(u), NodeID(v), w); err != nil {
				return nil, err
			}
			edges++
		case "a":
			if len(fields) < 3 {
				return nil, fmt.Errorf("graph: bad attribute line %q", s)
			}
			v, err := strconv.Atoi(fields[1])
			if err != nil || v < 0 || v >= n {
				return nil, fmt.Errorf("graph: bad attribute line %q", s)
			}
			attrs := make([]AttrID, 0, len(fields)-2)
			for _, f := range fields[2:] {
				a, err := strconv.Atoi(f)
				if err != nil || a < 0 || a >= na {
					return nil, fmt.Errorf("graph: bad attribute line %q", s)
				}
				attrs = append(attrs, AttrID(a))
			}
			if err := b.SetAttrs(NodeID(v), attrs...); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("graph: unknown record %q", s)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if edges != m {
		return nil, fmt.Errorf("graph: header declares %d edges, file has %d", m, edges)
	}
	return b.Build(), nil
}
