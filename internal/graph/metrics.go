package graph

import "slices"

// This file implements the community quality measures used by the paper's
// evaluation: topology density ρ, attribute density φ, and conductance.

// EdgesWithin counts the edges of g with both endpoints in the node set.
func EdgesWithin(g *Graph, nodes []NodeID) int {
	in := make(map[NodeID]struct{}, len(nodes))
	for _, v := range nodes {
		in[v] = struct{}{}
	}
	cnt := 0
	for _, v := range nodes {
		for _, u := range g.Neighbors(v) {
			if u > v {
				if _, ok := in[u]; ok {
					cnt++
				}
			}
		}
	}
	return cnt
}

// TopologyDensity returns ρ(C) = |E_C| / (|C| choose 2), the ratio between
// the number of edges and the number of node pairs in the community. A
// community with fewer than two nodes has density 0.
func TopologyDensity(g *Graph, nodes []NodeID) float64 {
	n := len(nodes)
	if n < 2 {
		return 0
	}
	pairs := float64(n) * float64(n-1) / 2
	return float64(EdgesWithin(g, nodes)) / pairs
}

// AttributeDensity returns φ(C) = (# nodes in C carrying attr) / |C|.
func AttributeDensity(g *Graph, nodes []NodeID, attr AttrID) float64 {
	if len(nodes) == 0 {
		return 0
	}
	cnt := 0
	for _, v := range nodes {
		if g.HasAttr(v, attr) {
			cnt++
		}
	}
	return float64(cnt) / float64(len(nodes))
}

// Conductance returns the conductance of the cut (nodes, V\nodes):
// cut(C) / min(vol(C), vol(V\C)). Lower is better; it is 0 for a whole
// component and defined as 1 when either side has zero volume.
func Conductance(g *Graph, nodes []NodeID) float64 {
	in := make(map[NodeID]struct{}, len(nodes))
	for _, v := range nodes {
		in[v] = struct{}{}
	}
	cut, vol := 0, 0
	for _, v := range nodes {
		vol += g.Degree(v)
		for _, u := range g.Neighbors(v) {
			if _, ok := in[u]; !ok {
				cut++
			}
		}
	}
	total := 2 * g.M()
	volOut := total - vol
	minVol := vol
	if volOut < minVol {
		minVol = volOut
	}
	if minVol == 0 {
		if cut == 0 {
			return 0
		}
		return 1
	}
	return float64(cut) / float64(minVol)
}

// AvgDegree returns the average degree 2m/n (0 for the empty graph).
func AvgDegree(g *Graph) float64 {
	if g.N() == 0 {
		return 0
	}
	return 2 * float64(g.M()) / float64(g.N())
}

// MaxDegree returns the maximum degree of g.
func MaxDegree(g *Graph) int {
	max := 0
	for v := NodeID(0); v < NodeID(g.N()); v++ {
		if d := g.Degree(v); d > max {
			max = d
		}
	}
	return max
}

// TriangleCount returns the number of triangles in g, counting each once.
// It uses the standard degree-ordered intersection method.
func TriangleCount(g *Graph) int {
	n := g.N()
	rank := make([]int32, n)
	order := make([]NodeID, n)
	for i := range order {
		order[i] = NodeID(i)
	}
	// Order by (degree, id) ascending; rank[v] is v's position.
	slices.SortFunc(order, func(a, b NodeID) int {
		if da, db := g.Degree(a), g.Degree(b); da != db {
			return da - db
		}
		return int(a - b)
	})
	for i, v := range order {
		rank[v] = int32(i)
	}
	count := 0
	marked := make([]bool, n)
	for _, v := range order {
		var fwd []NodeID
		for _, u := range g.Neighbors(v) {
			if rank[u] > rank[v] {
				fwd = append(fwd, u)
				marked[u] = true
			}
		}
		for _, u := range fwd {
			for _, w := range g.Neighbors(u) {
				if rank[w] > rank[u] && marked[w] {
					count++
				}
			}
		}
		for _, u := range fwd {
			marked[u] = false
		}
	}
	return count
}
