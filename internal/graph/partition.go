package graph

import "math"

// Partition-quality measures used to validate the synthetic dataset
// generators (and available to library users for community evaluation).

// Modularity returns the Newman–Girvan modularity of a node partition:
// Q = Σ_c (e_c/m - (d_c/2m)²), where e_c is the number of intra-community
// edges and d_c the total degree of community c. comm[v] is v's community.
func Modularity(g *Graph, comm []int) float64 {
	if g.M() == 0 {
		return 0
	}
	intra := map[int]int{}
	deg := map[int]int{}
	g.ForEachEdge(func(u, v NodeID, _ float64) {
		if comm[u] == comm[v] {
			intra[comm[u]]++
		}
	})
	for v := 0; v < g.N(); v++ {
		deg[comm[v]] += g.Degree(NodeID(v))
	}
	m := float64(g.M())
	q := 0.0
	for c, e := range intra {
		q += float64(e) / m
		_ = c
	}
	for _, d := range deg {
		x := float64(d) / (2 * m)
		q -= x * x
	}
	return q
}

// NMI returns the normalized mutual information between two partitions of
// the same node set (1 = identical up to relabeling, ~0 = independent).
func NMI(a, b []int) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return 0
	}
	n := float64(len(a))
	ca := map[int]int{}
	cb := map[int]int{}
	joint := map[[2]int]int{}
	for i := range a {
		ca[a[i]]++
		cb[b[i]]++
		joint[[2]int{a[i], b[i]}]++
	}
	mi := 0.0
	for k, nij := range joint {
		pij := float64(nij) / n
		pi := float64(ca[k[0]]) / n
		pj := float64(cb[k[1]]) / n
		mi += pij * math.Log(pij/(pi*pj))
	}
	ha, hb := entropy(ca, n), entropy(cb, n)
	if ha == 0 || hb == 0 {
		if ha == 0 && hb == 0 {
			return 1 // both partitions are single-cluster and identical
		}
		return 0
	}
	return mi / math.Sqrt(ha*hb)
}

func entropy(counts map[int]int, n float64) float64 {
	h := 0.0
	for _, c := range counts {
		p := float64(c) / n
		h -= p * math.Log(p)
	}
	return h
}
