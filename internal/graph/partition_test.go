package graph

import (
	"math"
	"testing"
)

func TestModularityTwoCliques(t *testing.T) {
	// two triangles joined by a single edge; perfect partition has high Q
	g := mustGraph(t, 6, [][2]NodeID{
		{0, 1}, {1, 2}, {0, 2},
		{3, 4}, {4, 5}, {3, 5},
		{2, 3},
	})
	good := []int{0, 0, 0, 1, 1, 1}
	bad := []int{0, 1, 0, 1, 0, 1}
	qGood := Modularity(g, good)
	qBad := Modularity(g, bad)
	if qGood <= qBad {
		t.Errorf("Q(good)=%.3f should exceed Q(bad)=%.3f", qGood, qBad)
	}
	if qGood < 0.3 {
		t.Errorf("Q(good)=%.3f implausibly low", qGood)
	}
	// single community: Q = 0 (all edges intra, (2m/2m)² subtracted)
	all := []int{0, 0, 0, 0, 0, 0}
	if q := Modularity(g, all); math.Abs(q) > 1e-12 {
		t.Errorf("Q(single) = %f, want 0", q)
	}
}

func TestNMI(t *testing.T) {
	a := []int{0, 0, 1, 1, 2, 2}
	if v := NMI(a, a); math.Abs(v-1) > 1e-9 {
		t.Errorf("NMI(a,a) = %f", v)
	}
	relabeled := []int{7, 7, 3, 3, 9, 9}
	if v := NMI(a, relabeled); math.Abs(v-1) > 1e-9 {
		t.Errorf("NMI under relabeling = %f", v)
	}
	single := []int{0, 0, 0, 0, 0, 0}
	if v := NMI(a, single); v != 0 {
		t.Errorf("NMI vs single cluster = %f, want 0", v)
	}
	if v := NMI(single, single); v != 1 {
		t.Errorf("NMI(single,single) = %f, want 1", v)
	}
	if v := NMI(a, []int{0}); v != 0 {
		t.Errorf("NMI on mismatched lengths = %f, want 0", v)
	}
	// independent-ish partitions score below identical ones
	b := []int{0, 1, 2, 0, 1, 2}
	if v := NMI(a, b); v >= 0.99 {
		t.Errorf("NMI of scrambled partition = %f, should be < 1", v)
	}
}

// The planted-partition generator must actually plant detectable structure:
// its ground-truth partition should have solid modularity.
func TestPlantedPartitionModularity(t *testing.T) {
	rng := NewRand(19)
	g, comms := PlantedPartition(PlantedPartitionSpec{
		N: 500, TargetM: 1500, NumComms: 10, IntraFraction: 0.85, HubBias: 0.3,
	}, rng)
	q := Modularity(g, comms)
	if q < 0.4 {
		t.Errorf("planted modularity = %.3f, want >= 0.4", q)
	}
}
