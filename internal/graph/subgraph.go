package graph

import "slices"

// Subgraph is a node-induced subgraph of a parent Graph, materialized as its
// own Graph with compact local node ids plus the mapping back to the parent.
type Subgraph struct {
	// G is the induced subgraph with local ids 0..len(ToParent)-1.
	G *Graph
	// ToParent maps local node ids to parent node ids (ascending).
	ToParent []NodeID
	// toLocal maps parent ids to local ids; -1 when absent.
	toLocal []int32
}

// Induce materializes the subgraph of g induced by nodes. The node list may
// be unsorted and may contain duplicates; attributes and weights are carried
// over. Edges are those of g with both endpoints in nodes.
func Induce(g *Graph, nodes []NodeID) *Subgraph {
	members := slices.Clone(nodes)
	slices.Sort(members)
	members = slices.Compact(members)
	toLocal := make([]int32, g.N())
	for i := range toLocal {
		toLocal[i] = -1
	}
	for i, v := range members {
		toLocal[v] = int32(i)
	}
	b := NewBuilder(len(members), g.NumAttrs())
	for i, v := range members {
		ns := g.Neighbors(v)
		ws := g.Weights(v)
		for j, u := range ns {
			lu := toLocal[u]
			if lu < 0 || u <= v { // add each undirected edge once
				continue
			}
			w := 1.0
			if ws != nil {
				w = ws[j]
			}
			// Endpoints validated by construction; Builder cannot fail here.
			_ = b.AddWeightedEdge(int32(i), lu, w)
		}
		if as := g.Attrs(v); len(as) > 0 {
			_ = b.SetAttrs(int32(i), as...)
		}
	}
	return &Subgraph{G: b.Build(), ToParent: members, toLocal: toLocal}
}

// Local maps a parent node id to its local id, or -1 when the node is not in
// the subgraph.
func (s *Subgraph) Local(parent NodeID) int32 {
	if int(parent) >= len(s.toLocal) {
		return -1
	}
	return s.toLocal[parent]
}

// Contains reports whether the parent node belongs to the subgraph.
func (s *Subgraph) Contains(parent NodeID) bool { return s.Local(parent) >= 0 }

// ParentNodes returns the parent ids of local nodes, i.e. a copy of ToParent.
func (s *Subgraph) ParentNodes() []NodeID { return slices.Clone(s.ToParent) }

// Reweight returns a copy of g in which every edge weight is replaced by
// fn(u, v, w). It is used to derive the attribute-weighted graph g_ℓ.
func Reweight(g *Graph, fn func(u, v NodeID, w float64) float64) *Graph {
	b := NewBuilder(g.N(), g.NumAttrs())
	g.ForEachEdge(func(u, v NodeID, w float64) {
		_ = b.AddWeightedEdge(u, v, fn(u, v, w))
	})
	for v := NodeID(0); v < NodeID(g.N()); v++ {
		if as := g.Attrs(v); len(as) > 0 {
			_ = b.SetAttrs(v, as...)
		}
	}
	return b.Build()
}
