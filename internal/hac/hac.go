// Package hac implements agglomerative hierarchical graph clustering with
// the nearest-neighbor chain algorithm, producing the community hierarchy
// (dendrogram) consumed by the COD algorithms.
//
// Following the paper's setup (§V-A), the default linkage is the unweighted
// average (UPGMA) similarity between clusters A and B on a weighted graph:
//
//	sim(A, B) = (Σ weight of edges between A and B) / (|A|·|B|)
//
// which is reducible, so the nearest-neighbor chain algorithm produces the
// same dendrogram as greedy agglomeration. Single linkage and WPGMA are
// available for ablations.
package hac

import (
	"context"
	"fmt"

	"github.com/codsearch/cod/internal/graph"
	"github.com/codsearch/cod/internal/hier"
	"github.com/codsearch/cod/internal/obs"
)

// Linkage selects the cluster-similarity update rule.
type Linkage int

const (
	// UnweightedAverage is UPGMA: average pairwise similarity, with absent
	// edges counting as similarity 0. The paper's default.
	UnweightedAverage Linkage = iota
	// WeightedAverage is WPGMA: the merged similarity is the plain mean of
	// the two constituents' similarities.
	WeightedAverage
	// Single linkage: the merged similarity is the max of the constituents'.
	Single
)

func (l Linkage) String() string {
	switch l {
	case UnweightedAverage:
		return "unweighted-average"
	case WeightedAverage:
		return "weighted-average"
	case Single:
		return "single"
	default:
		return fmt.Sprintf("Linkage(%d)", int(l))
	}
}

// Cluster builds the dendrogram of g using the nearest-neighbor chain
// algorithm under the given linkage. Disconnected graphs are supported: each
// component is clustered separately and the component roots are then merged
// left-to-right (with similarity 0) into a single root, so the result is
// always one tree spanning all nodes.
func Cluster(g *graph.Graph, linkage Linkage) (*hier.Tree, error) {
	return ClusterCtx(context.Background(), g, linkage)
}

// ClusterCtx is Cluster with cancellation: the merge loop polls ctx.Err()
// at a bounded interval and aborts with an error wrapping the context error.
// An uncancelled run is identical to Cluster (polling draws nothing).
func ClusterCtx(ctx context.Context, g *graph.Graph, linkage Linkage) (*hier.Tree, error) {
	n := g.N()
	if n == 0 {
		return nil, fmt.Errorf("hac: empty graph")
	}
	total := 2*n - 1
	parent := make([]hier.Vertex, total)
	for i := range parent {
		parent[i] = -1
	}
	if n == 1 {
		return hier.New(1, parent[:1])
	}

	c := &clusterer{
		g:       g,
		linkage: linkage,
		parent:  parent,
		size:    make([]int32, total),
		nbr:     make([]map[int32]float64, total),
		active:  make([]bool, total),
		next:    int32(n),
	}
	for v := 0; v < n; v++ {
		c.size[v] = 1
		c.active[v] = true
		m := make(map[int32]float64, g.Degree(graph.NodeID(v)))
		ws := g.Weights(graph.NodeID(v))
		for i, u := range g.Neighbors(graph.NodeID(v)) {
			w := 1.0
			if ws != nil {
				w = ws[i]
			}
			m[int32(u)] = w
		}
		c.nbr[v] = m
	}

	// The merge span flushes even on cancellation, counting the internal
	// vertices created so far (merges completed).
	span := obs.FromContext(ctx).StartSpan(obs.StageHACMerge)
	roots, err := c.run(ctx)
	if err != nil {
		span.EndItems(int(c.next) - n)
		return nil, err
	}
	// Merge component roots (if several) under zero similarity.
	for len(roots) > 1 {
		a, b := roots[0], roots[1]
		nv := c.newVertex(a, b)
		roots = append([]int32{nv}, roots[2:]...)
	}
	span.EndItems(int(c.next) - n)
	return hier.New(n, c.parent)
}

// ClusterBalanced clusters g and then rebalances the dendrogram along its
// heavy paths (hier.Rebalance), bounding every node's ancestor chain by
// O(log²n) regardless of hub skew. Use it when HIMOR cost on caterpillar
// dendrograms matters more than exact agglomerative faithfulness.
func ClusterBalanced(g *graph.Graph, linkage Linkage) (*hier.Tree, error) {
	return ClusterBalancedCtx(context.Background(), g, linkage)
}

// ClusterBalancedCtx is ClusterBalanced with cancellation (see ClusterCtx).
func ClusterBalancedCtx(ctx context.Context, g *graph.Graph, linkage Linkage) (*hier.Tree, error) {
	t, err := ClusterCtx(ctx, g, linkage)
	if err != nil {
		return nil, err
	}
	return hier.Rebalance(t)
}

type clusterer struct {
	g       *graph.Graph
	linkage Linkage
	parent  []hier.Vertex
	size    []int32
	nbr     []map[int32]float64 // active-cluster adjacency: neighbor -> linkage state
	active  []bool
	next    int32 // next internal vertex id
}

// sim converts the stored linkage state between clusters a and b into a
// comparable similarity.
func (c *clusterer) sim(a, b int32, state float64) float64 {
	if c.linkage == UnweightedAverage {
		return state / (float64(c.size[a]) * float64(c.size[b]))
	}
	return state
}

// nn returns the most similar active neighbor of a (ties broken toward
// prefer, then by smallest id) and its similarity; ok is false when a has no
// active neighbors.
func (c *clusterer) nn(a int32, prefer int32) (best int32, bestSim float64, ok bool) {
	best = -1
	for b, st := range c.nbr[a] {
		s := c.sim(a, b, st)
		switch {
		case best == -1, s > bestSim:
			best, bestSim = b, s
		//codvet:ignore floatcmp exact tie detection: equal linkage states must take the tie-break path
		case s == bestSim && (b == prefer || (best != prefer && b < best)):
			best = b
		}
	}
	return best, bestSim, best != -1
}

// clusterPollEvery bounds the cancellation-check interval of the merge
// loop: ctx.Err() is consulted once per this many chain steps.
const clusterPollEvery = 256

// run performs nearest-neighbor chain clustering over all components and
// returns the remaining roots (one per component). It polls ctx at a
// bounded interval and aborts with the number of merges completed.
func (c *clusterer) run(ctx context.Context) ([]int32, error) {
	n := c.g.N()
	remaining := n
	chain := make([]int32, 0, 64)
	seed := int32(0) // smallest untouched active cluster to restart chains

	steps := 0
	for remaining > 1 {
		if steps%clusterPollEvery == 0 {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("hac: clustering canceled after %d/%d merges: %w",
					n-remaining, n-1, err)
			}
		}
		steps++
		if len(chain) == 0 {
			for seed < c.next && !c.active[seed] {
				seed++
			}
			if seed >= c.next {
				break
			}
			chain = append(chain, seed)
		}
		top := chain[len(chain)-1]
		prefer := int32(-1)
		if len(chain) >= 2 {
			prefer = chain[len(chain)-2]
		}
		b, _, ok := c.nn(top, prefer)
		if !ok {
			// top is an isolated component root: set it aside.
			c.active[top] = false
			chain = chain[:len(chain)-1]
			// Not merged, so it stays a component root; it will be collected
			// in the final sweep below. remaining is unchanged for merging
			// purposes but the chain must not loop on it again.
			remaining--
			continue
		}
		if b == prefer {
			// Mutual nearest neighbors: merge top and prefer.
			chain = chain[:len(chain)-2]
			c.newVertex(top, b)
			remaining--
			continue
		}
		chain = append(chain, b)
	}

	var roots []int32
	for v := int32(0); v < c.next; v++ {
		if c.parent[v] == -1 {
			roots = append(roots, v)
		}
	}
	return roots, nil
}

// newVertex merges clusters a and b into a fresh internal vertex, updating
// adjacency with small-to-large map merging, and returns the new vertex id.
func (c *clusterer) newVertex(a, b int32) int32 {
	nv := c.next
	c.next++
	c.parent[a] = nv
	c.parent[b] = nv
	c.size[nv] = c.size[a] + c.size[b]
	c.active[a], c.active[b] = false, false
	c.active[nv] = true

	merged, other := c.nbr[a], c.nbr[b]
	if len(other) > len(merged) {
		merged, other = other, merged
	}
	delete(merged, a)
	delete(merged, b)
	delete(other, a)
	delete(other, b)
	switch c.linkage {
	case UnweightedAverage:
		// States are S-values (summed inter-cluster edge weights): they add.
		for x, st := range other {
			merged[x] += st
		}
	case WeightedAverage:
		// sim(N,x) = (sim(a,x) + sim(b,x)) / 2, absent sides contribute 0.
		for x := range merged {
			merged[x] /= 2
		}
		for x, st := range other {
			merged[x] += st / 2
		}
	case Single:
		for x, st := range other {
			if cur, ok := merged[x]; !ok || st > cur {
				merged[x] = st
			}
		}
	}
	c.nbr[nv] = merged
	c.nbr[a], c.nbr[b] = nil, nil
	// Rewire the neighbors' maps to point at nv with the symmetric state.
	for x, st := range merged {
		mx := c.nbr[x]
		delete(mx, a)
		delete(mx, b)
		mx[nv] = st
	}
	return nv
}
