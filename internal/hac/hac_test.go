package hac

import (
	"testing"
	"testing/quick"

	"github.com/codsearch/cod/internal/graph"
	"github.com/codsearch/cod/internal/hier"
)

func twoCliques(t *testing.T) *graph.Graph {
	t.Helper()
	// two 4-cliques joined by a single bridge edge
	b := graph.NewBuilder(8, 0)
	clique := func(nodes []graph.NodeID) {
		for i := 0; i < len(nodes); i++ {
			for j := i + 1; j < len(nodes); j++ {
				if err := b.AddEdge(nodes[i], nodes[j]); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	clique([]graph.NodeID{0, 1, 2, 3})
	clique([]graph.NodeID{4, 5, 6, 7})
	if err := b.AddEdge(3, 4); err != nil {
		t.Fatal(err)
	}
	return b.Build()
}

func TestClusterShape(t *testing.T) {
	g := twoCliques(t)
	tr, err := Cluster(g, UnweightedAverage)
	if err != nil {
		t.Fatalf("Cluster: %v", err)
	}
	if tr.N() != 8 {
		t.Fatalf("leaves = %d", tr.N())
	}
	if tr.NumVertices() != 15 { // 2n-1 for a binary dendrogram
		t.Fatalf("vertices = %d, want 15", tr.NumVertices())
	}
	if tr.Size(tr.Root()) != 8 {
		t.Errorf("root size = %d", tr.Size(tr.Root()))
	}
}

func TestClusterSeparatesCliques(t *testing.T) {
	g := twoCliques(t)
	tr, err := Cluster(g, UnweightedAverage)
	if err != nil {
		t.Fatal(err)
	}
	// The two cliques should be completely assembled before the bridge merge:
	// lca of any two same-clique nodes must be deeper than the root.
	root := tr.Root()
	for _, pair := range [][2]graph.NodeID{{0, 3}, {1, 2}, {4, 7}, {5, 6}} {
		if l := tr.LCANodes(pair[0], pair[1]); l == root {
			t.Errorf("nodes %v only meet at the root; cliques split too early", pair)
		}
	}
	// Cross-clique pairs meet exactly at the root.
	if l := tr.LCANodes(0, 7); l != root {
		t.Errorf("cross-clique lca = %d, want root %d", l, root)
	}
}

func TestClusterDisconnected(t *testing.T) {
	g, err := graph.FromEdges(6, [][2]graph.NodeID{{0, 1}, {1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	tr, errC := Cluster(g, UnweightedAverage)
	if errC != nil {
		t.Fatalf("Cluster on disconnected graph: %v", errC)
	}
	if tr.N() != 6 || tr.Size(tr.Root()) != 6 {
		t.Fatalf("root does not span all leaves: %d", tr.Size(tr.Root()))
	}
	// Within-component pairs meet below the root.
	if tr.LCANodes(0, 2) == tr.Root() {
		t.Error("component {0,1,2} split across the root")
	}
}

func TestClusterSingleNode(t *testing.T) {
	g, err := graph.FromEdges(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr, errC := Cluster(g, UnweightedAverage)
	if errC != nil {
		t.Fatal(errC)
	}
	if tr.N() != 1 || tr.NumVertices() != 1 {
		t.Errorf("degenerate tree: n=%d v=%d", tr.N(), tr.NumVertices())
	}
}

func TestClusterTwoNodes(t *testing.T) {
	g, err := graph.FromEdges(2, [][2]graph.NodeID{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	tr, errC := Cluster(g, UnweightedAverage)
	if errC != nil {
		t.Fatal(errC)
	}
	if tr.NumVertices() != 3 || tr.Size(tr.Root()) != 2 {
		t.Error("two-node dendrogram wrong")
	}
}

func TestLinkagesProduceValidTrees(t *testing.T) {
	rng := graph.NewRand(3)
	g := graph.ErdosRenyi(60, 150, rng)
	for _, l := range []Linkage{UnweightedAverage, WeightedAverage, Single} {
		tr, err := Cluster(g, l)
		if err != nil {
			t.Fatalf("%v: %v", l, err)
		}
		if tr.Size(tr.Root()) != 60 {
			t.Errorf("%v: root size %d", l, tr.Size(tr.Root()))
		}
	}
}

func TestLinkageString(t *testing.T) {
	if UnweightedAverage.String() != "unweighted-average" || Single.String() != "single" {
		t.Error("Linkage.String broken")
	}
	if Linkage(42).String() == "" {
		t.Error("unknown linkage should still format")
	}
}

func TestClusterDeterministic(t *testing.T) {
	g := graph.BarabasiAlbert(80, 2, graph.NewRand(9))
	t1, err1 := Cluster(g, UnweightedAverage)
	t2, err2 := Cluster(g, UnweightedAverage)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	for v := 0; v < t1.NumVertices(); v++ {
		if t1.Parent(hier.Vertex(v)) != t2.Parent(hier.Vertex(v)) {
			t.Fatalf("nondeterministic dendrogram at vertex %d", v)
		}
	}
}

// Property: for random connected graphs the dendrogram is a full binary tree
// with 2n-1 vertices, every internal vertex has exactly 2 children, and
// subtree sizes add up.
func TestDendrogramInvariants(t *testing.T) {
	check := func(seed uint16) bool {
		rng := graph.NewRand(uint64(seed))
		n := 5 + rng.IntN(60)
		g := graph.ErdosRenyi(n, 3*n, rng)
		if !g.Connected() {
			return true // connect() guarantees this, but stay safe
		}
		tr, err := Cluster(g, UnweightedAverage)
		if err != nil {
			return false
		}
		if tr.NumVertices() != 2*n-1 {
			return false
		}
		for v := n; v < tr.NumVertices(); v++ {
			ch := tr.Children(hier.Vertex(v))
			if len(ch) != 2 {
				return false
			}
			if tr.Size(ch[0])+tr.Size(ch[1]) != tr.Size(hier.Vertex(v)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property (reducibility consequence): along any root-to-leaf path the
// community sizes strictly decrease.
func TestChainSizesMonotone(t *testing.T) {
	g := graph.WattsStrogatz(100, 3, 0.1, graph.NewRand(21))
	tr, err := Cluster(g, UnweightedAverage)
	if err != nil {
		t.Fatal(err)
	}
	for leaf := 0; leaf < g.N(); leaf++ {
		prev := 1
		for _, a := range tr.Ancestors(hier.Vertex(leaf)) {
			if tr.Size(a) <= prev {
				t.Fatalf("sizes not increasing along H(%d)", leaf)
			}
			prev = tr.Size(a)
		}
	}
}

// ClusterBalanced must flatten hub-heavy dendrograms: on a star-burst graph
// its Σ dep(v) should be far below plain UPGMA's.
func TestClusterBalancedFlattensHubs(t *testing.T) {
	g := graph.HubBurst(2000, 3, 0.5, 0.4, 5, graph.NewRand(77))
	up, err := Cluster(g, UnweightedAverage)
	if err != nil {
		t.Fatal(err)
	}
	bal, err := ClusterBalanced(g, UnweightedAverage)
	if err != nil {
		t.Fatal(err)
	}
	if bal.Size(bal.Root()) != 2000 || bal.N() != 2000 {
		t.Fatal("balanced tree lost leaves")
	}
	du, db := up.SumLeafDepths(), bal.SumLeafDepths()
	if db*5 > du {
		t.Errorf("balanced Σdep = %d not far below UPGMA's %d", db, du)
	}
}
