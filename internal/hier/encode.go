package hier

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary serialization of a Tree: magic, leaf count, vertex count, parent
// array. Everything else (children, sizes, depths, LCA tables) is
// recomputed on load, so the format stays small and version-stable.

var treeMagic = [8]byte{'c', 'o', 'd', 't', 'r', 'e', 'e', '1'}

// WriteTo serializes the tree.
func (t *Tree) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var total int64
	write := func(v any) error {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
		total += int64(binary.Size(v))
		return nil
	}
	if err := write(treeMagic); err != nil {
		return total, err
	}
	if err := write(int64(t.n)); err != nil {
		return total, err
	}
	if err := write(int64(len(t.parent))); err != nil {
		return total, err
	}
	if err := write(t.parent); err != nil {
		return total, err
	}
	return total, bw.Flush()
}

// ReadTree deserializes a tree written by WriteTo, revalidating it. It
// reads exactly the tree's bytes, so the reader can carry trailing data
// (e.g. a HIMOR index saved to the same stream).
func ReadTree(r io.Reader) (*Tree, error) {
	br := r // binary.Read consumes exact sizes; no read-ahead allowed here
	var magic [8]byte
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return nil, fmt.Errorf("hier: reading magic: %w", err)
	}
	if magic != treeMagic {
		return nil, fmt.Errorf("hier: bad magic %q", magic)
	}
	var n, total int64
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &total); err != nil {
		return nil, err
	}
	if n < 1 || total < n || total > (1<<31) {
		return nil, fmt.Errorf("hier: implausible sizes n=%d total=%d", n, total)
	}
	parent := make([]Vertex, total)
	if err := binary.Read(br, binary.LittleEndian, parent); err != nil {
		return nil, err
	}
	return New(int(n), parent)
}
