package hier

import (
	"bytes"
	"testing"
)

func TestTreeRoundTrip(t *testing.T) {
	tr := paperTree(t)
	var buf bytes.Buffer
	n, err := tr.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := ReadTree(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != tr.N() || got.NumVertices() != tr.NumVertices() || got.Root() != tr.Root() {
		t.Fatal("shape changed in round trip")
	}
	for v := 0; v < tr.NumVertices(); v++ {
		if got.Parent(Vertex(v)) != tr.Parent(Vertex(v)) {
			t.Fatalf("parent of %d changed", v)
		}
		if got.Depth(Vertex(v)) != tr.Depth(Vertex(v)) || got.Size(Vertex(v)) != tr.Size(Vertex(v)) {
			t.Fatalf("derived data of %d changed", v)
		}
	}
	// LCA must be rebuilt correctly.
	if got.LCANodes(0, 6) != tr.LCANodes(0, 6) {
		t.Error("LCA differs after reload")
	}
}

func TestReadTreeLeavesTrailingData(t *testing.T) {
	tr := paperTree(t)
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	buf.WriteString("TRAILER")
	if _, err := ReadTree(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "TRAILER" {
		t.Errorf("ReadTree consumed trailing data; %q left", buf.String())
	}
}

func TestReadTreeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("not a tree at all"),
		append([]byte("codtree1"), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff), // absurd n
	}
	for i, raw := range cases {
		if _, err := ReadTree(bytes.NewReader(raw)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	// valid header but truncated parent array
	tr := paperTree(t)
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := ReadTree(bytes.NewReader(raw[:len(raw)-4])); err == nil {
		t.Error("truncated tree accepted")
	}
}
