package hier

// Rebalance restructures a dendrogram along its heavy paths: each maximal
// heavy path's hanging (light) subtrees are recombined under a balanced
// binary tree instead of the original one-at-a-time chain. The leaf set and
// the subtree *contents* hanging off each heavy path are preserved, but the
// merge order along the path is not — this is the usual
// balance-versus-faithfulness trade of balanced hierarchical clustering
// (the paper cites it as the orthogonal fix for HIMOR's Σ dep(v) cost on
// skewed graphs like Retweet).
//
// The result has depth O(log²n) regardless of the input's skew, so the
// per-node ancestor chains |H(q)| — and with them HIMOR construction time
// and index size — shrink from O(n) to polylogarithmic on caterpillar
// dendrograms.
func Rebalance(t *Tree) (*Tree, error) {
	n := t.N()
	// The rebuilt tree is always full binary: 2n-1 vertices, even when the
	// input had multiway internal vertices.
	total := 2*n - 1
	if n == 1 {
		total = 1
	}
	parent := make([]Vertex, total)
	for i := range parent {
		parent[i] = -1
	}
	next := Vertex(n)
	newInternal := func() Vertex {
		v := next
		next++
		return v
	}

	// Iterative post-order rebuild to avoid recursion depth limits on
	// heavily skewed inputs. For each original subtree root we compute the
	// id of its rebuilt root.
	type frame struct {
		v    Vertex
		hang []Vertex // light subtrees along v's heavy path, plus final leaf
		idx  int      // next hang entry to rebuild
		out  []Vertex // rebuilt roots of hang entries
	}
	var rebuilt = make(map[Vertex]Vertex)
	var stack []frame
	push := func(v Vertex) {
		if t.IsLeaf(v) {
			rebuilt[v] = v
			return
		}
		// walk the heavy path from v collecting light children
		var hang []Vertex
		cur := v
		for !t.IsLeaf(cur) {
			ch := t.Children(cur)
			heavy := ch[0]
			for _, c := range ch[1:] {
				if t.Size(c) > t.Size(heavy) {
					heavy = c
				}
			}
			for _, c := range ch {
				if c != heavy {
					hang = append(hang, c)
				}
			}
			cur = heavy
		}
		hang = append(hang, cur) // terminal leaf of the heavy path
		stack = append(stack, frame{v: v, hang: hang})
	}
	combine := func(roots []Vertex) Vertex {
		// pairwise-combine adjacent roots until one remains, preserving the
		// deep-to-shallow order so nearby communities stay nearby
		for len(roots) > 1 {
			var nextLevel []Vertex
			for i := 0; i+1 < len(roots); i += 2 {
				p := newInternal()
				parent[roots[i]] = p
				parent[roots[i+1]] = p
				nextLevel = append(nextLevel, p)
			}
			if len(roots)%2 == 1 {
				nextLevel = append(nextLevel, roots[len(roots)-1])
			}
			roots = nextLevel
		}
		return roots[0]
	}

	push(t.Root())
	if t.IsLeaf(t.Root()) {
		return New(n, parent[:1])
	}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.idx < len(f.hang) {
			h := f.hang[f.idx]
			if r, ok := rebuilt[h]; ok {
				f.out = append(f.out, r)
				f.idx++
				continue
			}
			push(h)
			if t.IsLeaf(h) {
				continue // rebuilt immediately; retry this entry
			}
			continue
		}
		rebuilt[f.v] = combine(f.out)
		stack = stack[:len(stack)-1]
	}
	root := rebuilt[t.Root()]
	parent = parent[:next]
	_ = root // root already has parent -1
	return New(n, parent)
}
