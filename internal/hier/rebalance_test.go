package hier

import (
	"testing"
	"testing/quick"

	"github.com/codsearch/cod/internal/graph"
)

// caterpillarTree builds the worst case: node i merges into the running
// cluster one at a time (depths O(n)).
func caterpillarTree(t *testing.T, n int) *Tree {
	t.Helper()
	parent := make([]Vertex, 2*n-1)
	// internal vertices n..2n-2; vertex n = merge(leaf0, leaf1),
	// vertex n+i = merge(vertex n+i-1, leaf i+1)
	parent[0], parent[1] = Vertex(n), Vertex(n)
	for i := 2; i < n; i++ {
		parent[i] = Vertex(n + i - 1)
	}
	for v := n; v < 2*n-2; v++ {
		parent[v] = Vertex(v + 1)
	}
	parent[2*n-2] = -1
	tr, err := New(n, parent)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestRebalanceCaterpillar(t *testing.T) {
	const n = 256
	tr := caterpillarTree(t, n)
	if tr.SumLeafDepths() < int64(n)*int64(n)/4 {
		t.Fatal("caterpillar not skewed enough to test")
	}
	bal, err := Rebalance(tr)
	if err != nil {
		t.Fatal(err)
	}
	if bal.N() != n || bal.Size(bal.Root()) != n {
		t.Fatal("rebalance lost leaves")
	}
	if bal.NumVertices() != 2*n-1 {
		t.Fatalf("vertices = %d, want %d", bal.NumVertices(), 2*n-1)
	}
	// depth must drop from O(n) to O(log² n); allow a generous constant
	maxDepth := 0
	for v := 0; v < n; v++ {
		if d := bal.Depth(Vertex(v)); d > maxDepth {
			maxDepth = d
		}
	}
	if maxDepth > 40 { // log2(256)=8; heavy-path bound ~ log² = 64, real ~10
		t.Errorf("max depth after rebalance = %d", maxDepth)
	}
}

func TestRebalancePreservesLightSubtrees(t *testing.T) {
	tr := paperTree(t)
	bal, err := Rebalance(tr)
	if err != nil {
		t.Fatal(err)
	}
	// Light subtrees hanging off heavy paths survive intact as communities
	// (only the merge order *along* each heavy path is restructured). In
	// paperTree the light subtrees include C5={8,9}, C1={4,5} and C2'={6,7}.
	for _, want := range [][]graph.NodeID{{8, 9}, {4, 5}, {6, 7}} {
		found := false
		for v := bal.N(); v < bal.NumVertices(); v++ {
			m := bal.Members(Vertex(v))
			if len(m) == 2 && m[0] == want[0] && m[1] == want[1] {
				found = true
			}
		}
		if !found {
			t.Errorf("light subtree %v not preserved", want)
		}
	}
}

func TestRebalanceSingleLeaf(t *testing.T) {
	tr, err := New(1, []Vertex{-1})
	if err != nil {
		t.Fatal(err)
	}
	bal, err := Rebalance(tr)
	if err != nil {
		t.Fatal(err)
	}
	if bal.N() != 1 || bal.NumVertices() != 1 {
		t.Error("degenerate rebalance wrong")
	}
}

// Property: rebalancing preserves the leaf set and yields a valid full
// binary dendrogram with never-worse total depth.
func TestRebalanceProperty(t *testing.T) {
	check := func(seed uint16) bool {
		rng := graph.NewRand(uint64(seed))
		n := 3 + rng.IntN(60)
		// random agglomeration order (often skewed)
		parent := make([]Vertex, 2*n-1)
		for i := range parent {
			parent[i] = -1
		}
		roots := make([]Vertex, n)
		for i := range roots {
			roots[i] = Vertex(i)
		}
		next := Vertex(n)
		for len(roots) > 1 {
			// biased: always merge the first root with a random one to skew
			j := 1 + rng.IntN(len(roots)-1)
			a, b := roots[0], roots[j]
			parent[a], parent[b] = next, next
			roots[j] = roots[len(roots)-1]
			roots = roots[:len(roots)-1]
			roots[0] = next
			next++
		}
		tr, err := New(n, parent)
		if err != nil {
			return false
		}
		bal, err := Rebalance(tr)
		if err != nil {
			return false
		}
		if bal.N() != n || bal.NumVertices() != 2*n-1 || bal.Size(bal.Root()) != n {
			return false
		}
		return bal.SumLeafDepths() <= tr.SumLeafDepths()+int64(n) // allow slack on tiny trees
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
