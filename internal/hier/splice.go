package hier

import (
	"fmt"

	"github.com/codsearch/cod/internal/graph"
)

// Splice replaces the subtree rooted at community vertex `at` with a
// hierarchy `local` built over exactly the same set of graph nodes (local
// leaf i corresponds to global node toGlobal[i]). The result is a fresh
// Tree; t and local are unchanged. Splicing is how LORE's reclustered
// community and the dynamic updater's re-clustered regions are folded back
// into a full hierarchy.
func Splice(t *Tree, at Vertex, local *Tree, toGlobal []graph.NodeID) (*Tree, error) {
	if t.IsLeaf(at) {
		return nil, fmt.Errorf("hier: cannot splice at leaf %d", at)
	}
	if local.N() != t.Size(at) || len(toGlobal) != local.N() {
		return nil, fmt.Errorf("hier: local tree has %d leaves, community has %d (mapping %d)",
			local.N(), t.Size(at), len(toGlobal))
	}
	members := t.Members(at)
	inSub := make(map[graph.NodeID]bool, len(members))
	for _, v := range members {
		inSub[v] = true
	}
	for _, gv := range toGlobal {
		if !inSub[gv] {
			return nil, fmt.Errorf("hier: mapping node %d not in community %d", gv, at)
		}
	}

	n := t.N()
	// Old internal vertices: keep those outside the subtree of `at`
	// (including `at`'s ancestors); drop `at` and its internal descendants.
	drop := make([]bool, t.NumVertices())
	var mark func(v Vertex)
	mark = func(v Vertex) {
		drop[v] = true
		for _, c := range t.Children(v) {
			if !t.IsLeaf(c) {
				mark(c)
			}
		}
	}
	mark(at)

	// New vertex ids: leaves 0..n-1 stay; surviving old internals are
	// renumbered first, then local's internals.
	oldToNew := make([]Vertex, t.NumVertices())
	next := Vertex(n)
	for v := n; v < t.NumVertices(); v++ {
		if drop[v] {
			oldToNew[v] = -1
			continue
		}
		oldToNew[v] = next
		next++
	}
	localToNew := make([]Vertex, local.NumVertices())
	for v := local.N(); v < local.NumVertices(); v++ {
		localToNew[v] = next
		next++
	}
	total := int(next)
	parent := make([]Vertex, total)
	for i := range parent {
		parent[i] = -1
	}

	// Parent of the spliced root: `at`'s old parent (or root).
	atParent := t.Parent(at)
	localRoot := local.Root()
	newLocalRoot := localToNew[localRoot]
	if local.IsLeaf(localRoot) {
		// degenerate: single-node community; its leaf is the global node
		newLocalRoot = Vertex(toGlobal[localRoot])
	}

	// Old edges outside the dropped subtree.
	for v := 0; v < t.NumVertices(); v++ {
		if drop[v] {
			continue
		}
		nv := Vertex(v)
		if t.IsLeaf(nv) {
			if inSub[t.NodeOf(nv)] {
				continue // its parent comes from the local tree
			}
		} else {
			nv = oldToNew[v]
		}
		p := t.Parent(Vertex(v))
		switch {
		case p == -1:
			parent[nv] = -1
		case drop[p]:
			// the only non-dropped vertices with dropped parents are leaves
			// inside the community, already skipped above; internal vertices
			// with dropped parents cannot exist (drop is a full subtree)
			return nil, fmt.Errorf("hier: internal splice inconsistency at vertex %d", v)
		default:
			parent[nv] = oldToNew[p]
		}
	}
	// Edge from spliced root to at's parent.
	if atParent == -1 {
		parent[newLocalRoot] = -1
	} else {
		parent[newLocalRoot] = oldToNew[atParent]
	}
	// Local tree edges.
	for v := 0; v < local.NumVertices(); v++ {
		p := local.Parent(Vertex(v))
		if p == -1 {
			continue // local root handled above
		}
		child := localToNew[v]
		if local.IsLeaf(Vertex(v)) {
			child = Vertex(toGlobal[v])
		}
		parent[child] = localToNew[p]
	}
	return New(n, parent)
}
