package hier

import (
	"testing"

	"github.com/codsearch/cod/internal/graph"
)

// localPair builds a 2-leaf local tree (leaves 0,1 under one root).
func localPair(t *testing.T) *Tree {
	t.Helper()
	tr, err := New(2, []Vertex{2, 2, -1})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestSpliceReplacesSubtree(t *testing.T) {
	tr := paperTree(t)
	// Replace C1 = vertex 13 = {4,5} with a (trivially identical) local pair
	// mapped in swapped order.
	local := localPair(t)
	got, err := Splice(tr, 13, local, []graph.NodeID{5, 4})
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != 10 || got.NumVertices() != tr.NumVertices() {
		t.Fatalf("shape changed: %d vertices", got.NumVertices())
	}
	// Membership structure must be preserved: {4,5} still meet below C4.
	l := got.LCANodes(4, 5)
	if got.Size(l) != 2 {
		t.Errorf("lca(4,5) spans %d nodes, want 2", got.Size(l))
	}
	// Unrelated parts unchanged semantically.
	if got.Size(got.LCANodes(0, 1)) != 4 {
		t.Error("C0 region disturbed")
	}
	if got.Size(got.Root()) != 10 {
		t.Error("root lost leaves")
	}
}

func TestSpliceDeeperLocalTree(t *testing.T) {
	tr := paperTree(t)
	// Replace C3 = vertex 12 = {0,1,2,3,6,7} with a left-deep local chain.
	// local leaves 0..5 map to global 0,1,2,3,6,7.
	parent := []Vertex{6, 6, 7, 8, 9, 10, 7, 8, 9, 10, -1}
	local, err := New(6, parent)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Splice(tr, 12, local, []graph.NodeID{0, 1, 2, 3, 6, 7})
	if err != nil {
		t.Fatal(err)
	}
	if got.Size(got.Root()) != 10 {
		t.Fatal("root lost leaves")
	}
	// the deep chain: lca(0,1) has size 2, then adding 2 gives 3, etc.
	if got.Size(got.LCANodes(0, 1)) != 2 {
		t.Errorf("deep chain base = %d", got.Size(got.LCANodes(0, 1)))
	}
	if got.Size(got.LCANodes(0, 7)) != 6 {
		t.Errorf("community top = %d, want 6", got.Size(got.LCANodes(0, 7)))
	}
	// depth of leaf 0 grew (chain is deeper than the old 2-level shape)
	if got.Depth(got.LeafOf(0)) <= tr.Depth(tr.LeafOf(0)) {
		t.Error("expected deeper leaf after chain splice")
	}
}

func TestSpliceAtRoot(t *testing.T) {
	tr := paperTree(t)
	// Replace the whole tree with a star of all 10 leaves under one root.
	parent := make([]Vertex, 11)
	for i := 0; i < 10; i++ {
		parent[i] = 10
	}
	parent[10] = -1
	local, err := New(10, parent)
	if err != nil {
		t.Fatal(err)
	}
	mapping := make([]graph.NodeID, 10)
	for i := range mapping {
		mapping[i] = graph.NodeID(i)
	}
	got, err := Splice(tr, tr.Root(), local, mapping)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumVertices() != 11 {
		t.Errorf("vertices = %d, want 11", got.NumVertices())
	}
	if got.Depth(got.LeafOf(3)) != 2 {
		t.Errorf("leaf depth = %d, want 2", got.Depth(got.LeafOf(3)))
	}
}

func TestSpliceRejectsBadInput(t *testing.T) {
	tr := paperTree(t)
	local := localPair(t)
	if _, err := Splice(tr, 3, local, []graph.NodeID{4, 5}); err == nil {
		t.Error("splice at leaf accepted")
	}
	if _, err := Splice(tr, 12, local, []graph.NodeID{4, 5}); err == nil {
		t.Error("size mismatch accepted")
	}
	if _, err := Splice(tr, 13, local, []graph.NodeID{4, 9}); err == nil {
		t.Error("mapping outside community accepted")
	}
}
