// Package hier implements the community hierarchy used by COD: a dendrogram
// whose leaves are graph nodes and whose internal vertices are communities,
// with O(1) lowest-common-ancestor queries (Euler tour + sparse table), the
// per-node ancestor chains H(u), depths following the paper's convention
// (dep(root) = 1, growing downward) and subtree sizes.
package hier

import (
	"fmt"

	"github.com/codsearch/cod/internal/graph"
)

// Vertex identifies a vertex of the hierarchy tree. Leaves come first:
// vertex v for v in 0..n-1 is the leaf holding graph node v; internal
// community vertices follow.
type Vertex = int32

// Tree is a community hierarchy over a graph with n nodes. Trees are built
// by New from a parent array (typically produced by package hac) and are
// immutable afterwards.
type Tree struct {
	n        int      // number of graph nodes (leaves)
	parent   []Vertex // parent[v] = parent vertex; -1 at the root
	children [][]Vertex
	size     []int32 // size[v] = number of leaves under v
	depth    []int32 // depth[root] = 1 (paper convention dep ∈ Z+)
	root     Vertex

	// Euler tour structures for O(1) LCA.
	firstOcc []int32  // first occurrence of each vertex in the tour
	tour     []Vertex // Euler tour of vertices
	sparse   [][]int32
	log2     []int32
}

// New builds a Tree over n graph nodes from a parent array covering all
// vertices (leaves 0..n-1 and internal vertices n..len(parent)-1). Exactly
// one vertex must have parent -1 (the root), every internal vertex must have
// at least one child, and all leaves must be reachable from the root.
func New(n int, parent []Vertex) (*Tree, error) {
	total := len(parent)
	if total < n || n < 1 {
		return nil, fmt.Errorf("hier: parent array of length %d cannot cover %d leaves", total, n)
	}
	t := &Tree{n: n, parent: parent, root: -1}
	t.children = make([][]Vertex, total)
	for v := 0; v < total; v++ {
		p := parent[v]
		switch {
		case p == -1:
			if t.root != -1 {
				return nil, fmt.Errorf("hier: multiple roots (%d and %d)", t.root, v)
			}
			t.root = Vertex(v)
		case p < 0 || int(p) >= total:
			return nil, fmt.Errorf("hier: vertex %d has out-of-range parent %d", v, p)
		case int(p) < n:
			return nil, fmt.Errorf("hier: leaf %d used as parent of %d", p, v)
		default:
			t.children[p] = append(t.children[p], Vertex(v))
		}
	}
	if t.root == -1 {
		return nil, fmt.Errorf("hier: no root vertex")
	}
	if err := t.computeOrder(); err != nil {
		return nil, err
	}
	t.buildLCA()
	return t, nil
}

// computeOrder fills size and depth with an iterative DFS and validates that
// the tree is acyclic and spans all vertices.
func (t *Tree) computeOrder() error {
	total := len(t.parent)
	t.size = make([]int32, total)
	t.depth = make([]int32, total)
	visited := make([]bool, total)
	// Iterative post-order: push with state.
	type frame struct {
		v     Vertex
		child int
	}
	stack := []frame{{t.root, 0}}
	t.depth[t.root] = 1
	visited[t.root] = true
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		ch := t.children[f.v]
		if f.child < len(ch) {
			c := ch[f.child]
			f.child++
			if visited[c] {
				return fmt.Errorf("hier: cycle through vertex %d", c)
			}
			visited[c] = true
			t.depth[c] = t.depth[f.v] + 1
			stack = append(stack, frame{c, 0})
			continue
		}
		// post-visit
		if int(f.v) < t.n {
			t.size[f.v] = 1
		} else {
			if len(ch) == 0 {
				return fmt.Errorf("hier: internal vertex %d has no children", f.v)
			}
			var s int32
			for _, c := range ch {
				s += t.size[c]
			}
			t.size[f.v] = s
		}
		stack = stack[:len(stack)-1]
	}
	for v := 0; v < total; v++ {
		if !visited[v] {
			return fmt.Errorf("hier: vertex %d unreachable from root", v)
		}
	}
	if int(t.size[t.root]) != t.n {
		return fmt.Errorf("hier: root spans %d leaves, want %d", t.size[t.root], t.n)
	}
	return nil
}

// buildLCA prepares the Euler tour sparse table.
func (t *Tree) buildLCA() {
	total := len(t.parent)
	t.firstOcc = make([]int32, total)
	for i := range t.firstOcc {
		t.firstOcc[i] = -1
	}
	t.tour = make([]Vertex, 0, 2*total)
	type frame struct {
		v     Vertex
		child int
	}
	stack := []frame{{t.root, 0}}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.child == 0 || f.child <= len(t.children[f.v]) {
			if t.firstOcc[f.v] == -1 {
				t.firstOcc[f.v] = int32(len(t.tour))
			}
			t.tour = append(t.tour, f.v)
		}
		if f.child < len(t.children[f.v]) {
			c := t.children[f.v][f.child]
			f.child++
			stack = append(stack, frame{c, 0})
			continue
		}
		stack = stack[:len(stack)-1]
	}
	m := len(t.tour)
	t.log2 = make([]int32, m+1)
	for i := 2; i <= m; i++ {
		t.log2[i] = t.log2[i/2] + 1
	}
	levels := int(t.log2[m]) + 1
	t.sparse = make([][]int32, levels)
	t.sparse[0] = make([]int32, m)
	for i := 0; i < m; i++ {
		t.sparse[0][i] = int32(i)
	}
	shallower := func(a, b int32) int32 {
		if t.depth[t.tour[a]] <= t.depth[t.tour[b]] {
			return a
		}
		return b
	}
	for j := 1; j < levels; j++ {
		span := 1 << j
		t.sparse[j] = make([]int32, m-span+1)
		for i := 0; i+span <= m; i++ {
			t.sparse[j][i] = shallower(t.sparse[j-1][i], t.sparse[j-1][i+span/2])
		}
	}
}

// N returns the number of graph nodes (leaves).
func (t *Tree) N() int { return t.n }

// NumVertices returns the total number of tree vertices (leaves + internal).
func (t *Tree) NumVertices() int { return len(t.parent) }

// Root returns the root vertex (the community equal to the whole graph).
func (t *Tree) Root() Vertex { return t.root }

// Parent returns the parent of vertex v, or -1 for the root.
func (t *Tree) Parent(v Vertex) Vertex { return t.parent[v] }

// Children returns the children of v. The slice must not be modified.
func (t *Tree) Children(v Vertex) []Vertex { return t.children[v] }

// Size returns |C_v|, the number of graph nodes in the community of v.
func (t *Tree) Size(v Vertex) int { return int(t.size[v]) }

// Depth returns dep(C_v): the paper's depth convention with dep(root) = 1
// and children one deeper than their parent.
func (t *Tree) Depth(v Vertex) int { return int(t.depth[v]) }

// IsLeaf reports whether v is a leaf (a single graph node).
func (t *Tree) IsLeaf(v Vertex) bool { return int(v) < t.n }

// LeafOf returns the leaf vertex holding graph node u (they coincide).
func (t *Tree) LeafOf(u graph.NodeID) Vertex { return Vertex(u) }

// NodeOf returns the graph node held by leaf vertex v; it panics when v is
// internal.
func (t *Tree) NodeOf(v Vertex) graph.NodeID {
	if !t.IsLeaf(v) {
		panic(fmt.Sprintf("hier: vertex %d is not a leaf", v))
	}
	return graph.NodeID(v)
}

// LCA returns the lowest common ancestor of vertices a and b in O(1).
func (t *Tree) LCA(a, b Vertex) Vertex {
	ia, ib := t.firstOcc[a], t.firstOcc[b]
	if ia > ib {
		ia, ib = ib, ia
	}
	j := t.log2[ib-ia+1]
	span := int32(1) << j
	x, y := t.sparse[j][ia], t.sparse[j][ib-span+1]
	if t.depth[t.tour[x]] <= t.depth[t.tour[y]] {
		return t.tour[x]
	}
	return t.tour[y]
}

// LCANodes returns the lowest common ancestor of two graph nodes, i.e. the
// smallest community containing both.
func (t *Tree) LCANodes(u, v graph.NodeID) Vertex { return t.LCA(t.LeafOf(u), t.LeafOf(v)) }

// IsAncestor reports whether a is an ancestor of b (or equal to it).
func (t *Tree) IsAncestor(a, b Vertex) bool { return t.LCA(a, b) == a }

// Ancestors returns the proper ancestors of leaf/vertex v from the deepest
// (its parent) to the root. For a leaf of graph node q this is exactly H(q):
// the hierarchical communities containing q, sorted by descending depth.
func (t *Tree) Ancestors(v Vertex) []Vertex {
	var out []Vertex
	for p := t.parent[v]; p != -1; p = t.parent[p] {
		out = append(out, p)
	}
	return out
}

// Members returns the graph nodes in the community of vertex v, ascending.
func (t *Tree) Members(v Vertex) []graph.NodeID {
	out := make([]graph.NodeID, 0, t.size[v])
	stack := []Vertex{v}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if t.IsLeaf(x) {
			out = append(out, t.NodeOf(x))
			continue
		}
		stack = append(stack, t.children[x]...)
	}
	sortNodeIDs(out)
	return out
}

// VerticesByDepthDesc returns all vertices ordered from deepest to
// shallowest (ties in arbitrary but deterministic order). Useful for
// bottom-up passes such as HIMOR construction.
func (t *Tree) VerticesByDepthDesc() []Vertex {
	maxd := 0
	for _, d := range t.depth {
		if int(d) > maxd {
			maxd = int(d)
		}
	}
	buckets := make([][]Vertex, maxd+1)
	for v := range t.parent {
		buckets[t.depth[v]] = append(buckets[t.depth[v]], Vertex(v))
	}
	out := make([]Vertex, 0, len(t.parent))
	for d := maxd; d >= 0; d-- {
		out = append(out, buckets[d]...)
	}
	return out
}

// SumLeafDepths returns Σ_v dep(v) over all graph nodes, the balancedness
// measure in the paper's HIMOR complexity analysis.
func (t *Tree) SumLeafDepths() int64 {
	var s int64
	for v := 0; v < t.n; v++ {
		s += int64(t.depth[v])
	}
	return s
}

func sortNodeIDs(s []graph.NodeID) {
	// small helper to avoid importing slices for one call site
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
