package hier

import (
	"testing"
	"testing/quick"

	"github.com/codsearch/cod/internal/graph"
)

// paperTree reproduces the hierarchy of Fig. 2: 10 leaves (v0..v9) and
// internal communities C0..C6. Vertex ids: leaves 0..9, then
// 10=C0{0,1,2,3}, 11=C1{4,5}, 12=C2{6,7,8,9}... The figure's exact shape:
// root C6 = everything; C6 -> {C4, C5}; C4 -> {C3, C1}; C3 -> {C0, C2'},
// simplified here to a 4-level tree that satisfies the depths used in the
// paper's examples: dep(C6)=1, dep(C4)=2, dep(C3)=3, dep(C0)=4.
func paperTree(t *testing.T) *Tree {
	t.Helper()
	// leaves 0..9
	// 10 = C0 {0,1,2,3}; 11 = C2 {6,7}; 12 = C3 {C0, C2} = {0,1,2,3,6,7}
	// 13 = C1 {4,5};     14 = C4 {C3, C1} = {0..7}
	// 15 = C5 {8,9};     16 = C6 root {C4, C5}
	parent := make([]Vertex, 17)
	assign := map[int]int{
		0: 10, 1: 10, 2: 10, 3: 10,
		6: 11, 7: 11,
		4: 13, 5: 13,
		8: 15, 9: 15,
		10: 12, 11: 12,
		12: 14, 13: 14,
		14: 16, 15: 16,
		16: -1,
	}
	for v, p := range assign {
		parent[v] = Vertex(p)
	}
	tree, err := New(10, parent)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return tree
}

func TestTreeShape(t *testing.T) {
	tr := paperTree(t)
	if tr.N() != 10 || tr.NumVertices() != 17 {
		t.Fatalf("shape: N=%d vertices=%d", tr.N(), tr.NumVertices())
	}
	if tr.Root() != 16 {
		t.Errorf("root = %d, want 16", tr.Root())
	}
	if tr.Depth(16) != 1 {
		t.Errorf("dep(root) = %d, want 1", tr.Depth(16))
	}
	if tr.Depth(14) != 2 || tr.Depth(12) != 3 || tr.Depth(10) != 4 {
		t.Errorf("depths C4=%d C3=%d C0=%d, want 2 3 4", tr.Depth(14), tr.Depth(12), tr.Depth(10))
	}
	if tr.Size(16) != 10 || tr.Size(14) != 8 || tr.Size(12) != 6 || tr.Size(10) != 4 {
		t.Errorf("sizes: %d %d %d %d", tr.Size(16), tr.Size(14), tr.Size(12), tr.Size(10))
	}
	if !tr.IsLeaf(3) || tr.IsLeaf(10) {
		t.Error("IsLeaf wrong")
	}
}

func TestLCAPaperExample(t *testing.T) {
	tr := paperTree(t)
	// Example 2: lca(v0, v6) = C3 (vertex 12) with dep 3.
	if got := tr.LCANodes(0, 6); got != 12 {
		t.Errorf("lca(v0,v6) = %d, want 12 (C3)", got)
	}
	if d := tr.Depth(tr.LCANodes(0, 6)); d != 3 {
		t.Errorf("dep(lca(v0,v6)) = %d, want 3", d)
	}
	if got := tr.LCANodes(0, 1); got != 10 {
		t.Errorf("lca(v0,v1) = %d, want 10 (C0)", got)
	}
	if got := tr.LCANodes(0, 9); got != 16 {
		t.Errorf("lca(v0,v9) = %d, want 16 (root)", got)
	}
	if got := tr.LCA(10, 12); got != 12 {
		t.Errorf("lca(C0,C3) = %d, want 12", got)
	}
	if got := tr.LCA(5, 5); got != 5 {
		t.Errorf("lca(v,v) = %d, want 5", got)
	}
}

func TestAncestorsIsHq(t *testing.T) {
	tr := paperTree(t)
	// H(v0) = {C0, C3, C4, C6} = vertices 10, 12, 14, 16 deepest first.
	anc := tr.Ancestors(tr.LeafOf(0))
	want := []Vertex{10, 12, 14, 16}
	if len(anc) != len(want) {
		t.Fatalf("H(v0) = %v, want %v", anc, want)
	}
	for i := range want {
		if anc[i] != want[i] {
			t.Fatalf("H(v0) = %v, want %v", anc, want)
		}
	}
}

func TestMembers(t *testing.T) {
	tr := paperTree(t)
	got := tr.Members(12)
	want := []graph.NodeID{0, 1, 2, 3, 6, 7}
	if len(got) != len(want) {
		t.Fatalf("Members(C3) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Members(C3) = %v, want %v", got, want)
		}
	}
	if ms := tr.Members(5); len(ms) != 1 || ms[0] != 5 {
		t.Errorf("Members(leaf 5) = %v", ms)
	}
}

func TestIsAncestor(t *testing.T) {
	tr := paperTree(t)
	if !tr.IsAncestor(16, 0) || !tr.IsAncestor(12, 10) || !tr.IsAncestor(12, 12) {
		t.Error("IsAncestor false negatives")
	}
	if tr.IsAncestor(10, 12) || tr.IsAncestor(11, 13) {
		t.Error("IsAncestor false positives")
	}
}

func TestVerticesByDepthDesc(t *testing.T) {
	tr := paperTree(t)
	order := tr.VerticesByDepthDesc()
	if len(order) != 17 {
		t.Fatalf("order length %d", len(order))
	}
	for i := 1; i < len(order); i++ {
		if tr.Depth(order[i-1]) < tr.Depth(order[i]) {
			t.Fatalf("not depth-descending at %d", i)
		}
	}
	if order[len(order)-1] != tr.Root() {
		t.Error("root should come last")
	}
}

func TestSumLeafDepths(t *testing.T) {
	tr := paperTree(t)
	// leaves 0-3 and 6-7 at depth 5, 4-5 at depth 4, 8-9 at depth 3
	want := int64(4*5 + 2*5 + 2*4 + 2*3)
	if got := tr.SumLeafDepths(); got != want {
		t.Errorf("SumLeafDepths = %d, want %d", got, want)
	}
}

func TestNewRejectsInvalid(t *testing.T) {
	cases := map[string][]Vertex{
		"two roots":      {-1, -1, 3, 3},
		"cycle":          {2, 2, 3, 2},
		"leaf as parent": {1, -1},
		"oob parent":     {9, -1, 0, 1},
		"childless internal vertex is unreachable": {2, 2, -1, -1},
	}
	for name, parent := range cases {
		n := 2
		if _, err := New(n, parent); err == nil {
			t.Errorf("%s: New accepted %v", name, parent)
		}
	}
}

func TestSingleLeafTree(t *testing.T) {
	tr, err := New(1, []Vertex{-1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if tr.Root() != 0 || tr.Size(0) != 1 || len(tr.Ancestors(0)) != 0 {
		t.Error("degenerate tree wrong")
	}
}

// Property: for random binary trees, LCA via sparse table agrees with naive
// parent-climbing.
func TestLCAAgainstNaive(t *testing.T) {
	build := func(seed uint16) (*Tree, bool) {
		rng := graph.NewRand(uint64(seed))
		n := 2 + rng.IntN(40)
		parent := make([]Vertex, 2*n-1)
		for i := range parent {
			parent[i] = -1
		}
		// random agglomeration: repeatedly merge two roots
		roots := make([]Vertex, n)
		for i := range roots {
			roots[i] = Vertex(i)
		}
		next := Vertex(n)
		for len(roots) > 1 {
			i := rng.IntN(len(roots))
			a := roots[i]
			roots[i] = roots[len(roots)-1]
			roots = roots[:len(roots)-1]
			j := rng.IntN(len(roots))
			b := roots[j]
			parent[a], parent[b] = next, next
			roots[j] = next
			next++
		}
		tr, err := New(n, parent)
		return tr, err == nil
	}
	naiveLCA := func(tr *Tree, a, b Vertex) Vertex {
		seen := map[Vertex]bool{}
		for v := a; v != -1; v = tr.Parent(v) {
			seen[v] = true
		}
		for v := b; v != -1; v = tr.Parent(v) {
			if seen[v] {
				return v
			}
		}
		return -1
	}
	check := func(seed uint16) bool {
		tr, ok := build(seed)
		if !ok {
			return false
		}
		rng := graph.NewRand(uint64(seed) + 999)
		for trial := 0; trial < 30; trial++ {
			a := Vertex(rng.IntN(tr.NumVertices()))
			b := Vertex(rng.IntN(tr.NumVertices()))
			if tr.LCA(a, b) != naiveLCA(tr, a, b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
