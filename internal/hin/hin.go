// Package hin extends COD to heterogeneous information networks — the
// paper's first stated future-work direction (§VI): graphs with multiple
// node and edge types, such as bibliographic networks with authors, papers
// and venues. The classic reduction applies: a symmetric meta-path (e.g.
// Author–Paper–Author) projects the HIN onto a weighted homogeneous graph
// over the anchor type, where edge weights count meta-path instances; COD
// then runs on the projection with instance counts informing both the
// hierarchy (via weighted linkage) and the influence model (via weighted
// probabilities).
package hin

import (
	"fmt"
	"slices"

	"github.com/codsearch/cod/internal/graph"
)

// NodeType identifies a node type of the schema (e.g. author/paper/venue).
type NodeType = int32

// EdgeType identifies an edge type of the schema. Each edge type connects
// one source node type to one target node type (symmetrically traversable).
type EdgeType = int32

// Schema declares the node and edge types of a HeteroGraph.
type Schema struct {
	// NodeTypes names each node type; index = NodeType.
	NodeTypes []string
	// EdgeTypes declares each edge type's name and endpoint types.
	EdgeTypes []EdgeTypeSpec
}

// EdgeTypeSpec is one edge type of the schema.
type EdgeTypeSpec struct {
	Name string
	From NodeType
	To   NodeType
}

// Validate checks internal consistency.
func (s Schema) Validate() error {
	if len(s.NodeTypes) == 0 {
		return fmt.Errorf("hin: schema with no node types")
	}
	for i, et := range s.EdgeTypes {
		if et.From < 0 || int(et.From) >= len(s.NodeTypes) ||
			et.To < 0 || int(et.To) >= len(s.NodeTypes) {
			return fmt.Errorf("hin: edge type %d (%s) references unknown node types", i, et.Name)
		}
	}
	return nil
}

// HeteroGraph is an undirected typed multigraph with categorical attributes
// on nodes. Build with NewBuilder.
type HeteroGraph struct {
	schema   Schema
	nodeType []NodeType
	// typed adjacency: adj[v] holds (neighbor, edgeType) pairs, sorted
	off     []int32
	adj     []graph.NodeID
	adjType []EdgeType
	attrs   [][]graph.AttrID
	numAttr int
	m       int
}

// Schema returns the graph's schema.
func (h *HeteroGraph) Schema() Schema { return h.schema }

// N returns the number of nodes.
func (h *HeteroGraph) N() int { return len(h.nodeType) }

// M returns the number of typed undirected edges.
func (h *HeteroGraph) M() int { return h.m }

// NumAttrs returns the attribute universe size.
func (h *HeteroGraph) NumAttrs() int { return h.numAttr }

// TypeOf returns the node type of v.
func (h *HeteroGraph) TypeOf(v graph.NodeID) NodeType { return h.nodeType[v] }

// NodesOfType returns all nodes of the given type, ascending.
func (h *HeteroGraph) NodesOfType(t NodeType) []graph.NodeID {
	var out []graph.NodeID
	for v, nt := range h.nodeType {
		if nt == t {
			out = append(out, graph.NodeID(v))
		}
	}
	return out
}

// Neighbors returns v's neighbors restricted to one edge type.
func (h *HeteroGraph) Neighbors(v graph.NodeID, et EdgeType) []graph.NodeID {
	var out []graph.NodeID
	for i := h.off[v]; i < h.off[v+1]; i++ {
		if h.adjType[i] == et {
			out = append(out, h.adj[i])
		}
	}
	return out
}

// Attrs returns v's attributes.
func (h *HeteroGraph) Attrs(v graph.NodeID) []graph.AttrID { return h.attrs[v] }

// HasAttr reports whether v carries attribute a.
func (h *HeteroGraph) HasAttr(v graph.NodeID, a graph.AttrID) bool {
	return slices.Contains(h.attrs[v], a)
}

// Builder accumulates a HeteroGraph.
type Builder struct {
	schema   Schema
	nodeType []NodeType
	edges    [][3]int32 // u, v, edgeType
	attrs    [][]graph.AttrID
	numAttr  int
}

// NewBuilder starts a HeteroGraph with the given schema, node-type
// assignment (one entry per node) and attribute universe size.
func NewBuilder(schema Schema, nodeTypes []NodeType, numAttrs int) (*Builder, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	for v, t := range nodeTypes {
		if t < 0 || int(t) >= len(schema.NodeTypes) {
			return nil, fmt.Errorf("hin: node %d has unknown type %d", v, t)
		}
	}
	return &Builder{
		schema:   schema,
		nodeType: slices.Clone(nodeTypes),
		attrs:    make([][]graph.AttrID, len(nodeTypes)),
		numAttr:  numAttrs,
	}, nil
}

// AddEdge records a typed undirected edge. The endpoint node types must
// match the edge type's declaration (in either orientation).
func (b *Builder) AddEdge(u, v graph.NodeID, et EdgeType) error {
	if u == v {
		return fmt.Errorf("hin: self loop on %d", u)
	}
	if u < 0 || int(u) >= len(b.nodeType) || v < 0 || int(v) >= len(b.nodeType) {
		return fmt.Errorf("hin: edge (%d,%d) out of range", u, v)
	}
	if et < 0 || int(et) >= len(b.schema.EdgeTypes) {
		return fmt.Errorf("hin: unknown edge type %d", et)
	}
	spec := b.schema.EdgeTypes[et]
	tu, tv := b.nodeType[u], b.nodeType[v]
	if !(tu == spec.From && tv == spec.To) && !(tu == spec.To && tv == spec.From) {
		return fmt.Errorf("hin: edge (%d,%d) types (%d,%d) do not match edge type %q (%d-%d)",
			u, v, tu, tv, spec.Name, spec.From, spec.To)
	}
	b.edges = append(b.edges, [3]int32{u, v, et})
	return nil
}

// SetAttrs assigns node v's attributes.
func (b *Builder) SetAttrs(v graph.NodeID, attrs ...graph.AttrID) error {
	if v < 0 || int(v) >= len(b.nodeType) {
		return fmt.Errorf("hin: node %d out of range", v)
	}
	for _, a := range attrs {
		if a < 0 || int(a) >= b.numAttr {
			return fmt.Errorf("hin: attribute %d out of range", a)
		}
	}
	cp := slices.Clone(attrs)
	slices.Sort(cp)
	b.attrs[v] = slices.Compact(cp)
	return nil
}

// Build assembles the HeteroGraph (duplicate typed edges are merged).
func (b *Builder) Build() *HeteroGraph {
	n := len(b.nodeType)
	// canonicalize endpoint order, sort, dedup
	canon := make([][3]int32, len(b.edges))
	for i, e := range b.edges {
		canon[i] = [3]int32{min(e[0], e[1]), max(e[0], e[1]), e[2]}
	}
	slices.SortFunc(canon, func(a, c [3]int32) int {
		for i := 0; i < 3; i++ {
			if a[i] != c[i] {
				return int(a[i] - c[i])
			}
		}
		return 0
	})
	dedup := slices.Compact(canon)

	h := &HeteroGraph{schema: b.schema, nodeType: b.nodeType, numAttr: b.numAttr, m: len(dedup)}
	deg := make([]int32, n)
	for _, e := range dedup {
		deg[e[0]]++
		deg[e[1]]++
	}
	h.off = make([]int32, n+1)
	for v := 0; v < n; v++ {
		h.off[v+1] = h.off[v] + deg[v]
	}
	h.adj = make([]graph.NodeID, 2*len(dedup))
	h.adjType = make([]EdgeType, 2*len(dedup))
	cursor := slices.Clone(h.off[:n])
	place := func(u, v graph.NodeID, et EdgeType) {
		i := cursor[u]
		cursor[u]++
		h.adj[i] = v
		h.adjType[i] = et
	}
	for _, e := range dedup {
		place(e[0], e[1], e[2])
		place(e[1], e[0], e[2])
	}
	h.attrs = b.attrs
	return h
}
