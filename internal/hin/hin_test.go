package hin

import (
	"testing"

	"github.com/codsearch/cod/internal/engine"
	"github.com/codsearch/cod/internal/graph"
)

// biblioSchema: authors (0), papers (1), venues (2); writes (0): A-P,
// published (1): P-V.
func biblioSchema() Schema {
	return Schema{
		NodeTypes: []string{"author", "paper", "venue"},
		EdgeTypes: []EdgeTypeSpec{
			{Name: "writes", From: 0, To: 1},
			{Name: "published", From: 1, To: 2},
		},
	}
}

// smallBiblio: 4 authors (0-3), 3 papers (4-6), 2 venues (7-8).
// paper 4: authors 0,1 (venue 7); paper 5: authors 1,2 (venue 7);
// paper 6: authors 2,3 (venue 8).
func smallBiblio(t *testing.T) *HeteroGraph {
	t.Helper()
	types := []NodeType{0, 0, 0, 0, 1, 1, 1, 2, 2}
	b, err := NewBuilder(biblioSchema(), types, 2)
	if err != nil {
		t.Fatal(err)
	}
	edges := [][3]int32{
		{0, 4, 0}, {1, 4, 0}, {1, 5, 0}, {2, 5, 0}, {2, 6, 0}, {3, 6, 0},
		{4, 7, 1}, {5, 7, 1}, {6, 8, 1},
	}
	for _, e := range edges {
		if err := b.AddEdge(e[0], e[1], EdgeType(e[2])); err != nil {
			t.Fatal(err)
		}
	}
	for a := graph.NodeID(0); a < 4; a++ {
		attr := graph.AttrID(0)
		if a >= 2 {
			attr = 1
		}
		if err := b.SetAttrs(a, attr); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func TestBuilderValidation(t *testing.T) {
	types := []NodeType{0, 1}
	b, err := NewBuilder(biblioSchema(), types, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(0, 0, 0); err == nil {
		t.Error("self loop accepted")
	}
	if err := b.AddEdge(0, 1, 1); err == nil {
		t.Error("type-mismatched edge accepted (author-paper via published)")
	}
	if err := b.AddEdge(0, 1, 9); err == nil {
		t.Error("unknown edge type accepted")
	}
	if _, err := NewBuilder(biblioSchema(), []NodeType{7}, 0); err == nil {
		t.Error("unknown node type accepted")
	}
	if _, err := NewBuilder(Schema{}, nil, 0); err == nil {
		t.Error("empty schema accepted")
	}
}

func TestHeteroGraphShape(t *testing.T) {
	h := smallBiblio(t)
	if h.N() != 9 || h.M() != 9 {
		t.Fatalf("shape %d/%d", h.N(), h.M())
	}
	if h.TypeOf(0) != 0 || h.TypeOf(4) != 1 || h.TypeOf(8) != 2 {
		t.Error("node types wrong")
	}
	if got := h.NodesOfType(0); len(got) != 4 {
		t.Errorf("authors = %v", got)
	}
	if ns := h.Neighbors(4, 0); len(ns) != 2 { // paper 4's authors
		t.Errorf("writes-neighbors of paper 4 = %v", ns)
	}
	if ns := h.Neighbors(4, 1); len(ns) != 1 || ns[0] != 7 {
		t.Errorf("published-neighbors of paper 4 = %v", ns)
	}
	if !h.HasAttr(0, 0) || h.HasAttr(0, 1) {
		t.Error("attrs wrong")
	}
}

func TestMetaPathValidate(t *testing.T) {
	s := biblioSchema()
	apa := MetaPath{Edges: []EdgeType{0, 0}, Start: 0}
	types, err := apa.Validate(s)
	if err != nil {
		t.Fatal(err)
	}
	want := []NodeType{0, 1, 0}
	for i := range want {
		if types[i] != want[i] {
			t.Fatalf("APA types = %v", types)
		}
	}
	apvpa := MetaPath{Edges: []EdgeType{0, 1, 1, 0}, Start: 0}
	if _, err := apvpa.Validate(s); err != nil {
		t.Fatalf("APVPA: %v", err)
	}
	// asymmetric path rejected
	ap := MetaPath{Edges: []EdgeType{0}, Start: 0}
	if _, err := ap.Validate(s); err == nil {
		t.Error("asymmetric path accepted")
	}
	// unwalkable
	bad := MetaPath{Edges: []EdgeType{1, 1}, Start: 0}
	if _, err := bad.Validate(s); err == nil {
		t.Error("unwalkable path accepted")
	}
	if _, err := (MetaPath{}).Validate(s); err == nil {
		t.Error("empty path accepted")
	}
}

func TestProjectAPA(t *testing.T) {
	h := smallBiblio(t)
	p, err := Project(h, MetaPath{Edges: []EdgeType{0, 0}, Start: 0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.G.N() != 4 {
		t.Fatalf("projection N = %d", p.G.N())
	}
	// co-authorships: (0,1) via paper4, (1,2) via paper5, (2,3) via paper6
	if p.G.M() != 3 {
		t.Fatalf("projection M = %d, want 3", p.G.M())
	}
	l := func(hid graph.NodeID) graph.NodeID { return graph.NodeID(p.FromHIN[hid]) }
	if !p.G.HasEdge(l(0), l(1)) || !p.G.HasEdge(l(1), l(2)) || !p.G.HasEdge(l(2), l(3)) {
		t.Error("co-author edges missing")
	}
	if p.G.HasEdge(l(0), l(2)) {
		t.Error("phantom co-author edge")
	}
	// attributes carried over
	if !p.G.HasAttr(l(3), 1) {
		t.Error("attrs lost in projection")
	}
}

func TestProjectAPVPA(t *testing.T) {
	h := smallBiblio(t)
	p, err := Project(h, MetaPath{Edges: []EdgeType{0, 1, 1, 0}, Start: 0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	l := func(hid graph.NodeID) graph.NodeID { return graph.NodeID(p.FromHIN[hid]) }
	// venue 7 hosts papers 4,5 -> authors {0,1} x {1,2} connected
	if !p.G.HasEdge(l(0), l(2)) {
		t.Error("APVPA should connect authors 0 and 2 via venue 7")
	}
	// venue 8 hosts only paper 6: authors 2,3 connected via APVPA too
	if !p.G.HasEdge(l(2), l(3)) {
		t.Error("APVPA should connect authors 2 and 3")
	}
	// authors 0 and 3 share no venue
	if p.G.HasEdge(l(0), l(3)) {
		t.Error("APVPA phantom edge 0-3")
	}
	// multiplicity: (1,2) share venue-7 paths (1-4-7-5-2 and 1-5-7-4-2? plus
	// 1-5-7-5-2 closed through same paper is valid) — weight must be >= 1
	if w := p.G.EdgeWeight(l(1), l(2)); w < 1 {
		t.Errorf("weight(1,2) = %f", w)
	}
}

func TestHINSearcherEndToEnd(t *testing.T) {
	// A larger bibliographic HIN with two planted research communities.
	rng := graph.NewRand(55)
	const authors, papersPer = 40, 60
	types := make([]NodeType, 0, authors+2*papersPer+2)
	for i := 0; i < authors; i++ {
		types = append(types, 0)
	}
	for i := 0; i < 2*papersPer; i++ {
		types = append(types, 1)
	}
	types = append(types, 2, 2)
	b, err := NewBuilder(biblioSchema(), types, 2)
	if err != nil {
		t.Fatal(err)
	}
	paper0 := graph.NodeID(authors)
	venue0 := graph.NodeID(authors + 2*papersPer)
	for p := 0; p < 2*papersPer; p++ {
		comm := p / papersPer // 0 or 1
		pid := paper0 + graph.NodeID(p)
		// 2-3 authors from the paper's community
		na := 2 + rng.IntN(2)
		for i := 0; i < na; i++ {
			a := graph.NodeID(comm*authors/2 + rng.IntN(authors/2))
			_ = b.AddEdge(a, pid, 0) // duplicates merged
		}
		_ = b.AddEdge(pid, venue0+graph.NodeID(comm), 1)
	}
	for a := 0; a < authors; a++ {
		_ = b.SetAttrs(graph.NodeID(a), graph.AttrID(a/(authors/2)))
	}
	h := b.Build()

	s, err := NewSearcher(h, MetaPath{Edges: []EdgeType{0, 0}, Start: 0},
		engine.Params{K: 5, Theta: 5, Seed: 55}, 0)
	if err != nil {
		t.Fatal(err)
	}
	com, err := s.Discover(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if com.Found {
		inComm0 := 0
		for _, v := range com.Nodes {
			if int(v) < authors/2 {
				inComm0++
			}
		}
		if inComm0*2 < len(com.Nodes) {
			t.Errorf("community leaked across research areas: %d/%d in community 0",
				inComm0, len(com.Nodes))
		}
	}
	// non-anchor query rejected
	if _, err := s.Discover(paper0, 0); err == nil {
		t.Error("paper node accepted as query")
	}
	if _, err := s.Discover(-1, 0); err == nil {
		t.Error("negative node accepted")
	}
}
