package hin

import (
	"fmt"

	"github.com/codsearch/cod/internal/graph"
)

// MetaPath is a sequence of edge types to traverse, e.g. Author–(writes)–
// Paper–(writes)–Author is the single-element... two-element path
// [writes, writes]. A meta-path used for projection must be symmetric in
// node types: it must start and end at the same node type.
type MetaPath struct {
	// Edges lists the edge types traversed in order.
	Edges []EdgeType
	// Start is the anchor node type the path begins and ends at.
	Start NodeType
}

// Validate checks the path is walkable under the schema and returns the
// sequence of node types visited.
func (m MetaPath) Validate(s Schema) ([]NodeType, error) {
	if len(m.Edges) == 0 {
		return nil, fmt.Errorf("hin: empty meta-path")
	}
	types := []NodeType{m.Start}
	cur := m.Start
	for i, et := range m.Edges {
		if et < 0 || int(et) >= len(s.EdgeTypes) {
			return nil, fmt.Errorf("hin: meta-path step %d: unknown edge type %d", i, et)
		}
		spec := s.EdgeTypes[et]
		switch cur {
		case spec.From:
			cur = spec.To
		case spec.To:
			cur = spec.From
		default:
			return nil, fmt.Errorf("hin: meta-path step %d: edge type %q does not leave node type %d",
				i, spec.Name, cur)
		}
		types = append(types, cur)
	}
	if cur != m.Start {
		return nil, fmt.Errorf("hin: meta-path ends at node type %d, want %d (projection needs a symmetric path)",
			cur, m.Start)
	}
	return types, nil
}

// Projection is the homogeneous weighted graph induced by a meta-path.
type Projection struct {
	// G is the weighted homogeneous graph over the anchor nodes (local
	// ids); edge weights count meta-path instances (capped at MaxWeight).
	G *graph.Graph
	// ToHIN maps local node ids back to the HIN's node ids.
	ToHIN []graph.NodeID
	// FromHIN maps HIN node ids to local ids (-1 when not of anchor type).
	FromHIN []int32
}

// MaxWeight caps the instance count recorded per projected edge, keeping
// hub-induced weights from drowning the linkage.
const MaxWeight = 64

// Project computes the meta-path projection of h: anchor nodes u, v are
// connected iff at least one meta-path instance links them, weighted by the
// (capped) instance count. Attributes of anchor nodes are carried over.
// Complexity is O(Σ_v paths through v) with per-source truncation: sources
// whose instance expansion exceeds maxExpansion (default 1<<20 when 0) have
// their weights truncated rather than the projection aborted.
func Project(h *HeteroGraph, m MetaPath, maxExpansion int) (*Projection, error) {
	types, err := m.Validate(h.Schema())
	if err != nil {
		return nil, err
	}
	_ = types
	if maxExpansion <= 0 {
		maxExpansion = 1 << 20
	}
	anchors := h.NodesOfType(m.Start)
	if len(anchors) == 0 {
		return nil, fmt.Errorf("hin: no nodes of anchor type %d", m.Start)
	}
	p := &Projection{ToHIN: anchors, FromHIN: make([]int32, h.N())}
	for i := range p.FromHIN {
		p.FromHIN[i] = -1
	}
	for i, v := range anchors {
		p.FromHIN[v] = int32(i)
	}

	b := graph.NewBuilder(len(anchors), h.NumAttrs())
	// For each anchor, BFS-expand along the meta-path counting instance
	// multiplicities, then add edges to anchors reached with u < v (to count
	// each undirected pair once; the count is symmetric for symmetric
	// paths... for general paths we traverse from both sides anyway, so
	// keep u < v to avoid double insertion).
	counts := map[graph.NodeID]int{}
	var frontier, next map[graph.NodeID]int
	for li, src := range anchors {
		frontier = map[graph.NodeID]int{src: 1}
		expansion := 0
		for _, et := range m.Edges {
			next = map[graph.NodeID]int{}
			for v, c := range frontier {
				for _, u := range h.Neighbors(v, et) {
					next[u] += c
					expansion += c
					if expansion > maxExpansion {
						break
					}
				}
				if expansion > maxExpansion {
					break
				}
			}
			frontier = next
		}
		clear(counts)
		for v, c := range frontier {
			if v == src {
				continue // closed walks are not communities ties
			}
			if p.FromHIN[v] >= 0 {
				counts[v] += c
			}
		}
		for v, c := range counts {
			lv := p.FromHIN[v]
			if int32(li) < lv { // add each pair once
				w := float64(c)
				if w > MaxWeight {
					w = MaxWeight
				}
				if err := b.AddWeightedEdge(int32(li), lv, w); err != nil {
					return nil, err
				}
			}
		}
	}
	for li, v := range anchors {
		if as := h.Attrs(v); len(as) > 0 {
			if err := b.SetAttrs(int32(li), as...); err != nil {
				return nil, err
			}
		}
	}
	p.G = b.Build()
	return p, nil
}
