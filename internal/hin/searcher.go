package hin

import (
	"fmt"

	"github.com/codsearch/cod/internal/engine"
	"github.com/codsearch/cod/internal/graph"
)

// Searcher answers COD queries on a HIN: the meta-path projection is built
// once, then the standard CODL pipeline (LORE + HIMOR) runs on it. Query
// nodes must be of the meta-path's anchor type; answers are reported in HIN
// node ids.
type Searcher struct {
	h    *HeteroGraph
	path MetaPath
	proj *Projection
	codl *engine.CODL
	seq  uint64
	seed uint64
}

// NewSearcher projects h along the meta-path and builds the COD state.
func NewSearcher(h *HeteroGraph, m MetaPath, params engine.Params, maxExpansion int) (*Searcher, error) {
	proj, err := Project(h, m, maxExpansion)
	if err != nil {
		return nil, err
	}
	codl, err := engine.NewCODL(proj.G, params)
	if err != nil {
		return nil, err
	}
	return &Searcher{h: h, path: m, proj: proj, codl: codl, seed: params.Seed}, nil
}

// Projection exposes the homogeneous projection for inspection.
func (s *Searcher) Projection() *Projection { return s.proj }

// Community is a COD answer over the HIN.
type Community struct {
	// Nodes are HIN node ids of the anchor type, ascending.
	Nodes []graph.NodeID
	// Found reports whether any projected community had q top-k.
	Found bool
	// FromIndex is true when the HIMOR index answered directly.
	FromIndex bool
}

// Discover finds the characteristic community of HIN node q (anchor type)
// for the query attribute over the meta-path projection.
func (s *Searcher) Discover(q graph.NodeID, attr graph.AttrID) (Community, error) {
	if q < 0 || int(q) >= s.h.N() {
		return Community{}, fmt.Errorf("hin: query node %d out of range", q)
	}
	lq := s.proj.FromHIN[q]
	if lq < 0 {
		return Community{}, fmt.Errorf("hin: query node %d is not of the meta-path anchor type %d",
			q, s.path.Start)
	}
	rng := graph.NewRand(graph.ItemSeed(s.seed, int(s.seq)))
	s.seq++
	com, err := s.codl.Query(lq, attr, rng)
	if err != nil {
		return Community{}, err
	}
	out := Community{Found: com.Found, FromIndex: com.FromIndex}
	for _, lv := range com.Nodes {
		out.Nodes = append(out.Nodes, s.proj.ToHIN[lv])
	}
	return out, nil
}
