// Package im implements reverse-influence-sampling (RIS) influence
// maximization: greedy maximum coverage over a pool of RR sets (Borgs et
// al., SODA'14). COD (package core) finds where one node matters; IM finds
// the seed set that matters most globally — the contrast drawn in the
// paper's related-work discussion. The marketing example uses both.
package im

import (
	"fmt"

	"github.com/codsearch/cod/internal/graph"
	"github.com/codsearch/cod/internal/influence"
)

// Result is the outcome of an IM computation.
type Result struct {
	// Seeds are the selected seed nodes, in selection order.
	Seeds []graph.NodeID
	// Coverage[i] is the fraction of RR sets covered by Seeds[:i+1]; the
	// expected spread of Seeds[:i+1] is Coverage[i] · |V| (Theorem 1).
	Coverage []float64
}

// Spread returns the estimated expected spread of the full seed set on a
// graph with n nodes.
func (r Result) Spread(n int) float64 {
	if len(r.Coverage) == 0 {
		return 0
	}
	return r.Coverage[len(r.Coverage)-1] * float64(n)
}

// Select greedily picks k seeds maximizing RR-set coverage over the given
// pool. The pool must have been sampled on the target graph; it is not
// modified. Runs in O(Σ|rr| + k·n) with lazy bucket updates.
func Select(g *graph.Graph, pool []*influence.RRGraph, k int) (Result, error) {
	n := g.N()
	if k < 1 || k > n {
		return Result{}, fmt.Errorf("im: k = %d out of range [1,%d]", k, n)
	}
	if len(pool) == 0 {
		return Result{}, fmt.Errorf("im: empty RR pool")
	}
	// node -> RR sets containing it
	covers := make([][]int32, n)
	for i, rr := range pool {
		for _, v := range rr.Nodes {
			covers[v] = append(covers[v], int32(i))
		}
	}
	gain := make([]int, n)
	for v := range gain {
		gain[v] = len(covers[v])
	}
	covered := make([]bool, len(pool))
	coveredCnt := 0

	// Bucketed lazy greedy: buckets[g] holds nodes whose cached gain is g.
	maxGain := 0
	for _, x := range gain {
		if x > maxGain {
			maxGain = x
		}
	}
	buckets := make([][]graph.NodeID, maxGain+1)
	for v := 0; v < n; v++ {
		buckets[gain[v]] = append(buckets[gain[v]], graph.NodeID(v))
	}
	picked := make([]bool, n)

	res := Result{Seeds: make([]graph.NodeID, 0, k), Coverage: make([]float64, 0, k)}
	cur := maxGain
	for len(res.Seeds) < k {
		// find the node with the highest up-to-date gain; stop at zero
		// marginal gain (every RR set already covered)
		var best graph.NodeID = -1
		for cur >= 1 {
			for len(buckets[cur]) > 0 {
				v := buckets[cur][len(buckets[cur])-1]
				buckets[cur] = buckets[cur][:len(buckets[cur])-1]
				if picked[v] {
					continue
				}
				// refresh the cached gain
				fresh := 0
				for _, ri := range covers[v] {
					if !covered[ri] {
						fresh++
					}
				}
				if fresh == cur {
					best = v
					break
				}
				gain[v] = fresh
				buckets[fresh] = append(buckets[fresh], v)
			}
			if best >= 0 {
				break
			}
			cur--
		}
		if best < 0 {
			break // pool exhausted: every RR set covered
		}
		picked[best] = true
		for _, ri := range covers[best] {
			if !covered[ri] {
				covered[ri] = true
				coveredCnt++
			}
		}
		res.Seeds = append(res.Seeds, best)
		res.Coverage = append(res.Coverage, float64(coveredCnt)/float64(len(pool)))
	}
	if len(res.Seeds) == 0 {
		return Result{}, fmt.Errorf("im: no seed selected")
	}
	return res, nil
}

// Maximize is the convenience wrapper: sample theta·n RR graphs under the
// model and greedily select k seeds.
func Maximize(g *graph.Graph, model influence.Model, k, theta int, seed uint64) (Result, error) {
	s := influence.NewSampler(g, model, graph.NewRand(seed))
	pool := s.Batch(theta * g.N())
	return Select(g, pool, k)
}
