package im

import (
	"testing"

	"github.com/codsearch/cod/internal/graph"
	"github.com/codsearch/cod/internal/influence"
)

func TestSelectPicksHubOfStar(t *testing.T) {
	// star: center 0 with 9 leaves — the center must be the first seed
	edges := make([][2]graph.NodeID, 0, 9)
	for v := graph.NodeID(1); v < 10; v++ {
		edges = append(edges, [2]graph.NodeID{0, v})
	}
	g, err := graph.FromEdges(10, edges)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Maximize(g, influence.NewWeightedCascade(g), 2, 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Seeds[0] != 0 {
		t.Errorf("first seed = %d, want center 0", res.Seeds[0])
	}
	// every leaf's RR set contains the center (p(0,leaf) = 1/deg(leaf) = 1),
	// so the center alone covers the pool and selection stops early
	if len(res.Seeds) > 2 {
		t.Errorf("seeds = %v", res.Seeds)
	}
}

func TestCoverageMonotone(t *testing.T) {
	g := graph.ErdosRenyi(60, 180, graph.NewRand(2))
	res, err := Maximize(g, influence.NewWeightedCascade(g), 8, 50, 3)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for i, c := range res.Coverage {
		if c < prev {
			t.Fatalf("coverage decreased at %d: %v", i, res.Coverage)
		}
		if c < 0 || c > 1 {
			t.Fatalf("coverage out of range: %v", c)
		}
		prev = c
	}
	if res.Spread(g.N()) <= 0 {
		t.Error("spread must be positive")
	}
}

func TestGreedyMatchesBruteForceOnTinyPool(t *testing.T) {
	// hand-crafted pool over 4 nodes; greedy = optimal here
	mk := func(nodes ...graph.NodeID) *influence.RRGraph {
		return &influence.RRGraph{Nodes: nodes}
	}
	pool := []*influence.RRGraph{
		mk(0, 1), mk(0, 2), mk(1), mk(3), mk(3), mk(3),
	}
	g, err := graph.FromEdges(4, [][2]graph.NodeID{{0, 1}, {1, 2}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Select(g, pool, 2)
	if err != nil {
		t.Fatal(err)
	}
	// node 3 covers 3 sets; nodes 0 and 1 then tie with marginal gain 2
	// (either choice is optimal)
	if res.Seeds[0] != 3 || (res.Seeds[1] != 0 && res.Seeds[1] != 1) {
		t.Errorf("seeds = %v, want [3 0] or [3 1]", res.Seeds)
	}
	if got := res.Coverage[1]; got != 5.0/6 {
		t.Errorf("final coverage = %v, want 5/6", got)
	}
}

func TestSelectErrors(t *testing.T) {
	g, err := graph.FromEdges(3, [][2]graph.NodeID{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Select(g, nil, 1); err == nil {
		t.Error("empty pool accepted")
	}
	pool := []*influence.RRGraph{{Nodes: []graph.NodeID{0}}}
	if _, err := Select(g, pool, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Select(g, pool, 99); err == nil {
		t.Error("k>n accepted")
	}
}

func TestSelectStopsWhenPoolCovered(t *testing.T) {
	g, err := graph.FromEdges(5, [][2]graph.NodeID{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	pool := []*influence.RRGraph{{Nodes: []graph.NodeID{2}}}
	res, err := Select(g, pool, 4)
	if err != nil {
		t.Fatal(err)
	}
	// one RR set, one useful seed; further seeds add nothing and selection
	// stops early
	if len(res.Seeds) != 1 || res.Seeds[0] != 2 {
		t.Errorf("seeds = %v", res.Seeds)
	}
	if res.Coverage[0] != 1 {
		t.Errorf("coverage = %v", res.Coverage)
	}
}
