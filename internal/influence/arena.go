package influence

import "github.com/codsearch/cod/internal/graph"

// Arena owns reusable backing storage for a batch of RR graphs. Instead of
// allocating fresh Nodes/Off/Adj slices per sample — the dominant allocation
// cost of a query, at Θ = θ·n samples each a handful of small slices — every
// sample of a batch appends into three shared arrays and Finalize carves
// slice headers out of them. A Reset keeps the capacity, so an arena cycled
// through a sync.Pool amortizes sampling allocations across queries.
//
// Ownership contract: the []*RRGraph returned by Finalize aliases the
// arena's backing arrays. It is valid until the next Reset (or the next
// sample recorded into the arena) and must not be retained past the point
// the arena is recycled; callers that need RR graphs to outlive the arena
// own the arena itself (as the per-attribute sample cache does) instead of
// copying.
//
// An Arena is single-goroutine, like the samplers that fill it.
type Arena struct {
	nodes []graph.NodeID
	off   []int32
	adj   []int32

	live   []arenaEdge // live edges of the sample under construction
	cursor []int32     // CSR fill scratch
	spans  []rrSpan
	hdr    []RRGraph
	ptrs   []*RRGraph
}

// arenaEdge is one live edge recorded during sampling: positions are local
// to the open sample.
type arenaEdge struct{ head, tail int32 }

// rrSpan locates one completed sample inside the backing arrays.
type rrSpan struct {
	nodeOff, nodeLen int
	offOff           int // Off span start; its length is nodeLen+1
	adjOff, adjLen   int
}

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

// Reset drops every recorded sample but keeps the backing capacity. Slices
// previously returned by Finalize become invalid.
func (a *Arena) Reset() {
	a.nodes = a.nodes[:0]
	a.off = a.off[:0]
	a.adj = a.adj[:0]
	a.live = a.live[:0]
	a.spans = a.spans[:0]
	a.hdr = a.hdr[:0]
	a.ptrs = a.ptrs[:0]
}

// Len returns the number of completed samples.
func (a *Arena) Len() int { return len(a.spans) }

// beginRR opens a sample rooted at src and returns the node-array base
// offset; the sampler appends nodes via pushNode and edges via pushEdge.
func (a *Arena) beginRR(src graph.NodeID) int {
	base := len(a.nodes)
	a.nodes = append(a.nodes, src)
	a.live = a.live[:0]
	return base
}

// pushNode appends a node to the open sample, returning its local position.
func (a *Arena) pushNode(base int, u graph.NodeID) int32 {
	p := int32(len(a.nodes) - base)
	a.nodes = append(a.nodes, u)
	return p
}

// pushEdge records a live edge between local positions of the open sample.
func (a *Arena) pushEdge(head, tail int32) {
	a.live = append(a.live, arenaEdge{head, tail})
}

// endRR closes the open sample, bucketing its live edges into CSR form in
// the shared Off/Adj arrays — the same layout RRGraphFrom builds, so the
// resulting graphs are byte-identical to the allocating path.
func (a *Arena) endRR(base int) {
	n := len(a.nodes) - base
	offStart := len(a.off)
	a.off = growInt32(a.off, n+1)
	off := a.off[offStart:]
	for _, e := range a.live {
		off[e.head+1]++
	}
	for i := 1; i <= n; i++ {
		off[i] += off[i-1]
	}
	adjStart := len(a.adj)
	a.adj = growInt32(a.adj, len(a.live))
	adj := a.adj[adjStart:]
	if cap(a.cursor) < n {
		a.cursor = make([]int32, n)
	}
	cur := a.cursor[:n]
	copy(cur, off[:n])
	for _, e := range a.live {
		adj[cur[e.head]] = e.tail
		cur[e.head]++
	}
	a.spans = append(a.spans, rrSpan{nodeOff: base, nodeLen: n, offOff: offStart, adjOff: adjStart, adjLen: len(a.live)})
}

// growInt32 extends s by n zeroed elements.
func growInt32(s []int32, n int) []int32 {
	for cap(s) < len(s)+n {
		s = append(s[:cap(s)], 0)[:len(s)]
	}
	tail := s[len(s) : len(s)+n]
	clear(tail)
	return s[: len(s)+n : cap(s)]
}

// Finalize materializes headers for every completed sample. The returned
// slice and the RRGraphs it points to alias the arena; see the ownership
// contract in the type comment.
func (a *Arena) Finalize() []*RRGraph {
	if cap(a.hdr) < len(a.spans) {
		a.hdr = make([]RRGraph, 0, len(a.spans))
	}
	a.hdr = a.hdr[:0]
	for _, sp := range a.spans {
		a.hdr = append(a.hdr, RRGraph{
			Nodes: a.nodes[sp.nodeOff : sp.nodeOff+sp.nodeLen : sp.nodeOff+sp.nodeLen],
			Off:   a.off[sp.offOff : sp.offOff+sp.nodeLen+1 : sp.offOff+sp.nodeLen+1],
			Adj:   a.adj[sp.adjOff : sp.adjOff+sp.adjLen : sp.adjOff+sp.adjLen],
		})
	}
	a.ptrs = a.ptrs[:0]
	for i := range a.hdr {
		a.ptrs = append(a.ptrs, &a.hdr[i])
	}
	return a.ptrs
}

// ArenaSampler is implemented by samplers that can write samples into an
// Arena instead of allocating them; both the IC Sampler and the LTSampler
// qualify, so the engine can pool sampling buffers for either model. The
// arena variants consume randomness in exactly the same order as their
// allocating counterparts: given equal rng states the samples are
// byte-identical (locked by TestArenaSamplingByteIdentical).
type ArenaSampler interface {
	GraphSampler
	// RRGraphInto samples one RR graph from a uniform source into a.
	RRGraphInto(a *Arena)
	// RRGraphWithinInto samples one RR graph rooted at src confined to
	// member nodes into a.
	RRGraphWithinInto(a *Arena, src graph.NodeID, member func(graph.NodeID) bool)
}

var (
	_ ArenaSampler = (*Sampler)(nil)
	_ ArenaSampler = (*LTSampler)(nil)
)

// RRGraphInto samples one RR graph from a uniform source into a.
func (s *Sampler) RRGraphInto(a *Arena) {
	s.RRGraphFromInto(a, graph.NodeID(s.rng.IntN(s.g.N())))
}

// RRGraphFromInto is RRGraphFrom writing into a: same coin policy, same
// randomness order, arena-backed storage.
func (s *Sampler) RRGraphFromInto(a *Arena, src graph.NodeID) {
	s.ver++
	base := a.beginRR(src)
	s.pos[src] = 0
	s.epoch[src] = s.ver
	for qi := 0; base+qi < len(a.nodes); qi++ {
		v := a.nodes[base+qi]
		for _, u := range s.g.Neighbors(v) {
			if s.rng.Float64() >= s.model.Prob(u, v) {
				continue
			}
			if s.epoch[u] != s.ver {
				s.epoch[u] = s.ver
				s.pos[u] = a.pushNode(base, u)
			}
			a.pushEdge(int32(qi), s.pos[u])
		}
	}
	a.endRR(base)
}

// RRGraphWithinInto is RRGraphWithin writing into a.
func (s *Sampler) RRGraphWithinInto(a *Arena, src graph.NodeID, member func(graph.NodeID) bool) {
	s.ver++
	base := a.beginRR(src)
	s.pos[src] = 0
	s.epoch[src] = s.ver
	for qi := 0; base+qi < len(a.nodes); qi++ {
		v := a.nodes[base+qi]
		for _, u := range s.g.Neighbors(v) {
			if !member(u) {
				continue
			}
			if s.rng.Float64() >= s.model.Prob(u, v) {
				continue
			}
			if s.epoch[u] != s.ver {
				s.epoch[u] = s.ver
				s.pos[u] = a.pushNode(base, u)
			}
			a.pushEdge(int32(qi), s.pos[u])
		}
	}
	a.endRR(base)
}

// RRGraphInto samples one LT RR graph from a uniform source into a.
func (s *LTSampler) RRGraphInto(a *Arena) {
	s.rrWalkInto(a, graph.NodeID(s.rng.IntN(s.g.N())), nil)
}

// RRGraphWithinInto samples one LT RR graph rooted at src confined to
// member nodes into a.
func (s *LTSampler) RRGraphWithinInto(a *Arena, src graph.NodeID, member func(graph.NodeID) bool) {
	s.rrWalkInto(a, src, member)
}

// rrWalkInto is the arena form of the LT reverse walk; member == nil means
// unrestricted. Randomness order matches RRGraphFrom/RRGraphWithin exactly.
func (s *LTSampler) rrWalkInto(a *Arena, src graph.NodeID, member func(graph.NodeID) bool) {
	s.ver++
	base := a.beginRR(src)
	s.pos[src] = 0
	s.epoch[src] = s.ver
	cur := src
	for {
		u := s.pickInNeighbor(cur)
		if u < 0 || (member != nil && !member(u)) {
			break
		}
		if s.epoch[u] == s.ver {
			a.pushEdge(s.pos[cur], s.pos[u])
			break
		}
		s.epoch[u] = s.ver
		s.pos[u] = a.pushNode(base, u)
		a.pushEdge(s.pos[cur], s.pos[u])
		cur = u
	}
	a.endRR(base)
}
