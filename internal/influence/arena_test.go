package influence

import (
	"context"
	"fmt"
	"testing"

	"github.com/codsearch/cod/internal/graph"
)

func rrStr(r *RRGraph) string {
	return fmt.Sprintf("nodes=%v off=%v adj=%v", r.Nodes, r.Off, r.Adj)
}

// TestArenaSamplerByteIdentical locks the arena contract: the Into variants
// must consume the rng in exactly the allocating methods' order and produce
// CSR layouts equal field-by-field, so pooled execution answers match the
// allocating path byte-for-byte.
func TestArenaSamplerByteIdentical(t *testing.T) {
	g := graph.ErdosRenyi(60, 220, graph.NewRand(41))
	member := func(u graph.NodeID) bool { return u%3 != 0 }

	t.Run("ic", func(t *testing.T) {
		ref := NewSampler(g, NewWeightedCascade(g), graph.NewRand(7))
		got := NewSampler(g, NewWeightedCascade(g), graph.NewRand(7))
		a := NewArena()
		var want []*RRGraph
		for i := 0; i < 50; i++ {
			want = append(want, ref.RRGraph())
			got.RRGraphInto(a)
		}
		for i := 0; i < 30; i++ {
			src := graph.NodeID(i % g.N())
			want = append(want, ref.RRGraphWithin(src, member))
			got.RRGraphWithinInto(a, src, member)
		}
		compareRRs(t, a.Finalize(), want)
	})

	t.Run("lt", func(t *testing.T) {
		ref := NewLTSampler(g, UniformLT{G: g}, graph.NewRand(9))
		got := NewLTSampler(g, UniformLT{G: g}, graph.NewRand(9))
		a := NewArena()
		var want []*RRGraph
		for i := 0; i < 50; i++ {
			want = append(want, ref.RRGraph())
			got.RRGraphInto(a)
		}
		for i := 0; i < 30; i++ {
			src := graph.NodeID(i % g.N())
			want = append(want, ref.RRGraphWithin(src, member))
			got.RRGraphWithinInto(a, src, member)
		}
		compareRRs(t, a.Finalize(), want)
	})
}

// TestArenaResetReuse locks the recycling contract: a Reset arena refilled
// with a re-seeded sampler reproduces its first run exactly, and the second
// run's headers never alias stale spans from the first.
func TestArenaResetReuse(t *testing.T) {
	g := graph.ErdosRenyi(40, 150, graph.NewRand(43))
	a := NewArena()
	s := NewSampler(g, NewWeightedCascade(g), graph.NewRand(11))
	for i := 0; i < 40; i++ {
		s.RRGraphInto(a)
	}
	first := make([]string, 0, 40)
	for _, r := range a.Finalize() {
		first = append(first, rrStr(r))
	}
	a.Reset()
	s.SetRand(graph.NewRand(11))
	for i := 0; i < 40; i++ {
		s.RRGraphInto(a)
	}
	second := a.Finalize()
	if len(second) != len(first) {
		t.Fatalf("reused arena yielded %d rr graphs, want %d", len(second), len(first))
	}
	for i, r := range second {
		if rrStr(r) != first[i] {
			t.Errorf("rr %d differs after Reset:\n got %s\nwant %s", i, rrStr(r), first[i])
		}
	}
}

// TestBatchIntoCtxMatchesBatchCtx locks the pooled batch entry point against
// the allocating one, including the cancellation shape.
func TestBatchIntoCtxMatchesBatchCtx(t *testing.T) {
	g := graph.ErdosRenyi(50, 180, graph.NewRand(47))
	want, err := BatchCtx(context.Background(),
		NewSampler(g, NewWeightedCascade(g), graph.NewRand(13)), 200)
	if err != nil {
		t.Fatal(err)
	}
	a := NewArena()
	got, err := BatchIntoCtx(context.Background(),
		NewSampler(g, NewWeightedCascade(g), graph.NewRand(13)), 200, a)
	if err != nil {
		t.Fatal(err)
	}
	compareRRs(t, got, want)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	a2 := NewArena()
	partial, err := BatchIntoCtx(ctx, NewSampler(g, NewWeightedCascade(g), graph.NewRand(13)), 200, a2)
	if err == nil {
		t.Fatal("canceled BatchIntoCtx returned no error")
	}
	if len(partial) != 0 {
		t.Errorf("pre-start cancellation returned %d samples", len(partial))
	}
}

func compareRRs(t *testing.T, got, want []*RRGraph) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d rr graphs, want %d", len(got), len(want))
	}
	for i := range got {
		if rrStr(got[i]) != rrStr(want[i]) {
			t.Errorf("rr %d differs:\n got %s\nwant %s", i, rrStr(got[i]), rrStr(want[i]))
		}
	}
}
