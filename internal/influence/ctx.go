package influence

import (
	"context"
	"fmt"

	"github.com/codsearch/cod/internal/obs"
)

// PollEvery is the bounded cancellation-check interval of the sampling
// loops: ctx.Err() is consulted once per PollEvery Monte-Carlo draws. One RR
// sample costs microseconds on realistic graphs, so cancellation latency is
// well under a millisecond while the check itself stays off the profile.
const PollEvery = 64

// CanceledError reports a Monte-Carlo computation stopped by context
// cancellation, carrying how much work completed. Completed units are
// deterministic — sample i depends only on (graph, model, seed, i) — so
// callers may keep or discard partial results freely; only the tail is
// missing. Unwrap yields the context error, so errors.Is(err,
// context.DeadlineExceeded) and errors.Is(err, context.Canceled) work.
type CanceledError struct {
	// Op names the canceled computation (e.g. "influence: rr batch").
	Op string
	// Done counts completed units (samples, queries) out of Total.
	Done, Total int
	// Cause is the context's error.
	Cause error
}

// Error implements error.
func (e *CanceledError) Error() string {
	return fmt.Sprintf("%s canceled after %d/%d units: %v", e.Op, e.Done, e.Total, e.Cause)
}

// Unwrap exposes the underlying context error.
func (e *CanceledError) Unwrap() error { return e.Cause }

// BatchCtx samples count RR graphs from s, checking ctx.Err() every
// PollEvery samples. On cancellation it returns the samples completed so far
// together with a *CanceledError. An uncancelled call is byte-identical to
// s.Batch(count): the polling consumes no randomness.
func BatchCtx(ctx context.Context, s GraphSampler, count int) ([]*RRGraph, error) {
	span := obs.FromContext(ctx).StartSpan(obs.StageRRSample)
	out := make([]*RRGraph, 0, count)
	for i := 0; i < count; i++ {
		if i%PollEvery == 0 {
			if err := ctx.Err(); err != nil {
				span.EndItems(i)
				return out, &CanceledError{Op: "influence: rr batch", Done: i, Total: count, Cause: err}
			}
		}
		out = append(out, s.RRGraph())
	}
	span.EndItems(count)
	return out, nil
}

// BatchIntoCtx is BatchCtx writing every sample into a instead of
// allocating: same polling cadence, same span, same randomness order, so the
// finalized RR graphs are byte-identical to BatchCtx's for equal rng states.
// The returned slice aliases the arena (see Arena's ownership contract). On
// cancellation the samples completed so far are returned with the
// *CanceledError.
func BatchIntoCtx(ctx context.Context, s ArenaSampler, count int, a *Arena) ([]*RRGraph, error) {
	span := obs.FromContext(ctx).StartSpan(obs.StageRRSample)
	for i := 0; i < count; i++ {
		if i%PollEvery == 0 {
			if err := ctx.Err(); err != nil {
				span.EndItems(i)
				return a.Finalize(), &CanceledError{Op: "influence: rr batch", Done: i, Total: count, Cause: err}
			}
		}
		s.RRGraphInto(a)
	}
	span.EndItems(count)
	return a.Finalize(), nil
}
