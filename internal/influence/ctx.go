package influence

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"

	"github.com/codsearch/cod/internal/graph"
	"github.com/codsearch/cod/internal/obs"
)

// PollEvery is the bounded cancellation-check interval of the sampling
// loops: ctx.Err() is consulted once per PollEvery Monte-Carlo draws. One RR
// sample costs microseconds on realistic graphs, so cancellation latency is
// well under a millisecond while the check itself stays off the profile.
const PollEvery = 64

// CanceledError reports a Monte-Carlo computation stopped by context
// cancellation, carrying how much work completed. Completed units are
// deterministic — sample i depends only on (graph, model, seed, i) — so
// callers may keep or discard partial results freely; only the tail is
// missing. Unwrap yields the context error, so errors.Is(err,
// context.DeadlineExceeded) and errors.Is(err, context.Canceled) work.
type CanceledError struct {
	// Op names the canceled computation (e.g. "influence: rr batch").
	Op string
	// Done counts completed units (samples, queries) out of Total.
	Done, Total int
	// Cause is the context's error.
	Cause error
}

// Error implements error.
func (e *CanceledError) Error() string {
	return fmt.Sprintf("%s canceled after %d/%d units: %v", e.Op, e.Done, e.Total, e.Cause)
}

// Unwrap exposes the underlying context error.
func (e *CanceledError) Unwrap() error { return e.Cause }

// BatchCtx samples count RR graphs from s, checking ctx.Err() every
// PollEvery samples. On cancellation it returns the samples completed so far
// together with a *CanceledError. An uncancelled call is byte-identical to
// s.Batch(count): the polling consumes no randomness.
func BatchCtx(ctx context.Context, s GraphSampler, count int) ([]*RRGraph, error) {
	span := obs.FromContext(ctx).StartSpan(obs.StageRRSample)
	out := make([]*RRGraph, 0, count)
	for i := 0; i < count; i++ {
		if i%PollEvery == 0 {
			if err := ctx.Err(); err != nil {
				span.EndItems(i)
				return out, &CanceledError{Op: "influence: rr batch", Done: i, Total: count, Cause: err}
			}
		}
		out = append(out, s.RRGraph())
	}
	span.EndItems(count)
	return out, nil
}

// BatchIntoCtx is BatchCtx writing every sample into a instead of
// allocating: same polling cadence, same span, same randomness order, so the
// finalized RR graphs are byte-identical to BatchCtx's for equal rng states.
// The returned slice aliases the arena (see Arena's ownership contract). On
// cancellation the samples completed so far are returned with the
// *CanceledError.
func BatchIntoCtx(ctx context.Context, s ArenaSampler, count int, a *Arena) ([]*RRGraph, error) {
	span := obs.FromContext(ctx).StartSpan(obs.StageRRSample)
	for i := 0; i < count; i++ {
		if i%PollEvery == 0 {
			if err := ctx.Err(); err != nil {
				span.EndItems(i)
				return a.Finalize(), &CanceledError{Op: "influence: rr batch", Done: i, Total: count, Cause: err}
			}
		}
		s.RRGraphInto(a)
	}
	span.EndItems(count)
	return a.Finalize(), nil
}

// ParallelBatchCtx is ParallelBatch with bounded-interval cancellation:
// every worker checks ctx.Err() once per PollEvery samples and stops early
// when the context is done. An uncancelled call returns the same pool as
// ParallelBatch for the same arguments; a canceled call returns a
// *CanceledError counting the samples that completed across all workers
// (the pool slice has holes, so it is withheld). The fan-in always flushes
// the completed-sample total through the context Recorder — on early cancel
// the per-worker counts used to vanish with the discarded pool, which left
// metrics blind to how much sampling a shed query had already paid for.
func ParallelBatchCtx(ctx context.Context, g *graph.Graph, model Model, count int, seed uint64, workers int) ([]*RRGraph, error) {
	if workers < 1 {
		workers = 1
	}
	if workers > count {
		workers = count
	}
	span := obs.FromContext(ctx).StartSpan(obs.StageRRSample)
	out := make([]*RRGraph, count)
	if count == 0 {
		span.EndItems(0)
		return out, nil
	}
	per := count / workers
	extra := count % workers
	var done atomic.Int64
	var wg sync.WaitGroup
	start := 0
	for w := 0; w < workers; w++ {
		n := per
		if w < extra {
			n++
		}
		lo, hi := start, start+n
		start = hi
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			src := graph.NewPCG(0)
			s := NewSampler(g, model, rand.New(src))
			for i := lo; i < hi; i++ {
				if (i-lo)%PollEvery == 0 && ctx.Err() != nil {
					return
				}
				graph.SeedPCG(src, graph.ItemSeed(seed, i))
				out[i] = s.RRGraph()
				done.Add(1)
			}
		}(lo, hi)
	}
	wg.Wait()
	span.EndItems(int(done.Load()))
	if err := ctx.Err(); err != nil && int(done.Load()) < count {
		return nil, &CanceledError{Op: "influence: parallel rr batch",
			Done: int(done.Load()), Total: count, Cause: err}
	}
	return out, nil
}
