package influence

import (
	"context"
	"errors"
	"testing"

	"github.com/codsearch/cod/internal/graph"
)

func TestBatchCtxMatchesBatchWhenUncancelled(t *testing.T) {
	g := graph.ErdosRenyi(60, 150, graph.NewRand(4))
	model := NewWeightedCascade(g)
	plain := NewSampler(g, model, graph.NewRand(9)).Batch(300)
	withCtx, err := BatchCtx(context.Background(), NewSampler(g, model, graph.NewRand(9)), 300)
	if err != nil {
		t.Fatal(err)
	}
	if rrBytes(t, plain) != rrBytes(t, withCtx) {
		t.Error("BatchCtx(Background) differs from Batch")
	}
}

func TestBatchCtxCancellation(t *testing.T) {
	g := graph.ErdosRenyi(60, 150, graph.NewRand(4))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	got, err := BatchCtx(ctx, NewSampler(g, NewWeightedCascade(g), graph.NewRand(9)), 500)
	if err == nil {
		t.Fatal("canceled batch returned no error")
	}
	var ce *CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("error %T is not *CanceledError", err)
	}
	if ce.Done != len(got) || ce.Total != 500 {
		t.Errorf("progress %d/%d, got %d samples", ce.Done, ce.Total, len(got))
	}
	if !errors.Is(err, context.Canceled) {
		t.Error("error does not unwrap to context.Canceled")
	}
}

func TestParallelBatchCtxMatchesParallelBatch(t *testing.T) {
	g := graph.ErdosRenyi(60, 150, graph.NewRand(4))
	model := NewWeightedCascade(g)
	plain := ParallelBatch(g, model, 257, 11, 4)
	withCtx, err := ParallelBatchCtx(context.Background(), g, model, 257, 11, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rrBytes(t, plain) != rrBytes(t, withCtx) {
		t.Error("ParallelBatchCtx differs from ParallelBatch across worker counts")
	}
}

func TestParallelBatchCtxCancellation(t *testing.T) {
	g := graph.ErdosRenyi(60, 150, graph.NewRand(4))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := ParallelBatchCtx(ctx, g, NewWeightedCascade(g), 10_000, 11, 4)
	if err == nil {
		t.Fatal("canceled parallel batch returned no error")
	}
	var ce *CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("error %T is not *CanceledError", err)
	}
	if ce.Done >= ce.Total {
		t.Errorf("progress %d/%d reports a complete run", ce.Done, ce.Total)
	}
	if !errors.Is(err, context.Canceled) {
		t.Error("error does not unwrap to context.Canceled")
	}
}
