package influence

import (
	"context"
	"errors"
	"testing"

	"github.com/codsearch/cod/internal/graph"
	"github.com/codsearch/cod/internal/obs"
)

func TestBatchCtxMatchesBatchWhenUncancelled(t *testing.T) {
	g := graph.ErdosRenyi(60, 150, graph.NewRand(4))
	model := NewWeightedCascade(g)
	plain := NewSampler(g, model, graph.NewRand(9)).Batch(300)
	withCtx, err := BatchCtx(context.Background(), NewSampler(g, model, graph.NewRand(9)), 300)
	if err != nil {
		t.Fatal(err)
	}
	if rrBytes(t, plain) != rrBytes(t, withCtx) {
		t.Error("BatchCtx(Background) differs from Batch")
	}
}

func TestBatchCtxCancellation(t *testing.T) {
	g := graph.ErdosRenyi(60, 150, graph.NewRand(4))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	got, err := BatchCtx(ctx, NewSampler(g, NewWeightedCascade(g), graph.NewRand(9)), 500)
	if err == nil {
		t.Fatal("canceled batch returned no error")
	}
	var ce *CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("error %T is not *CanceledError", err)
	}
	if ce.Done != len(got) || ce.Total != 500 {
		t.Errorf("progress %d/%d, got %d samples", ce.Done, ce.Total, len(got))
	}
	if !errors.Is(err, context.Canceled) {
		t.Error("error does not unwrap to context.Canceled")
	}
}

func TestParallelBatchCtxMatchesParallelBatch(t *testing.T) {
	g := graph.ErdosRenyi(60, 150, graph.NewRand(4))
	model := NewWeightedCascade(g)
	plain := ParallelBatch(g, model, 257, 11, 4)
	withCtx, err := ParallelBatchCtx(context.Background(), g, model, 257, 11, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rrBytes(t, plain) != rrBytes(t, withCtx) {
		t.Error("ParallelBatchCtx differs from ParallelBatch across worker counts")
	}
}

func TestParallelBatchCtxCancellation(t *testing.T) {
	g := graph.ErdosRenyi(60, 150, graph.NewRand(4))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := ParallelBatchCtx(ctx, g, NewWeightedCascade(g), 10_000, 11, 4)
	if err == nil {
		t.Fatal("canceled parallel batch returned no error")
	}
	var ce *CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("error %T is not *CanceledError", err)
	}
	if ce.Done >= ce.Total {
		t.Errorf("progress %d/%d reports a complete run", ce.Done, ce.Total)
	}
	if !errors.Is(err, context.Canceled) {
		t.Error("error does not unwrap to context.Canceled")
	}
}

// TestParallelBatchRangeCtxStagedMatchesFull locks the stage-resumable
// contract: sampling a geometric schedule of ranges concatenates to the
// byte-identical pool of one full-range call, for any worker count.
func TestParallelBatchRangeCtxStagedMatchesFull(t *testing.T) {
	g := graph.ErdosRenyi(60, 150, graph.NewRand(4))
	model := NewWeightedCascade(g)
	want := rrBytes(t, ParallelBatch(g, model, 400, 11, 4))
	for _, workers := range []int{1, 3} {
		var pool []*RRGraph
		lo := 0
		for _, hi := range []int{50, 100, 200, 400} {
			part, err := ParallelBatchRangeCtx(context.Background(), g, model, lo, hi, 11, workers)
			if err != nil {
				t.Fatal(err)
			}
			pool = append(pool, part...)
			lo = hi
		}
		if got := rrBytes(t, pool); got != want {
			t.Errorf("workers=%d: staged ranges differ from the full-range pool", workers)
		}
	}
}

func TestParallelBatchRangeCtxEdgeCases(t *testing.T) {
	g := graph.ErdosRenyi(10, 20, graph.NewRand(2))
	model := NewWeightedCascade(g)
	if got, err := ParallelBatchRangeCtx(context.Background(), g, model, 7, 7, 1, 4); err != nil || len(got) != 0 {
		t.Errorf("empty range: got %d samples, err %v", len(got), err)
	}
	if got, err := ParallelBatchRangeCtx(context.Background(), g, model, 9, 3, 1, 4); err != nil || len(got) != 0 {
		t.Errorf("inverted range: got %d samples, err %v", len(got), err)
	}
}

// TestParallelBatchRangeCtxCancelFlushesStageCounts extends the PR-3 fan-in
// lock to the staged path: each stage call is its own rr_sample span, and a
// cancel landing mid-stage must flush that stage's partial per-worker count
// through the Recorder — the earlier complete stages keep their exact spans,
// and the cumulative item count equals completed-stage samples plus the
// partial stage's Done, with nothing double-counted.
func TestParallelBatchRangeCtxCancelFlushesStageCounts(t *testing.T) {
	g := graph.ErdosRenyi(60, 150, graph.NewRand(4))
	model := NewWeightedCascade(g)
	reg := obs.NewRegistry()
	m := obs.NewQueryMetrics(reg)
	tr := obs.NewTrace()
	rctx := obs.WithRecorder(context.Background(), obs.NewRecorder(m, tr))

	// Two complete stages on a live context…
	if _, err := ParallelBatchRangeCtx(rctx, g, model, 0, 128, 11, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := ParallelBatchRangeCtx(rctx, g, model, 128, 256, 11, 2); err != nil {
		t.Fatal(err)
	}
	// …then a stage whose context flips to Canceled mid-run: each of the 2
	// workers covers 384 samples with a poll every 64, so the flip lands
	// after some samples complete but before the stage can finish.
	fc := &flipCtx{Context: rctx, nilFor: 3}
	_, err := ParallelBatchRangeCtx(fc, g, model, 256, 1024, 11, 2)
	var ce *CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("error %T is not *CanceledError (err=%v)", err, err)
	}
	if ce.Done <= 0 || ce.Done >= ce.Total {
		t.Fatalf("progress %d/%d is not a partial stage", ce.Done, ce.Total)
	}
	if ce.Total != 1024-256 {
		t.Errorf("Total = %d, want the stage range size %d — staged callers sum stages, so a cumulative Total would double-count", ce.Total, 1024-256)
	}

	want := int64(128 + 128 + ce.Done)
	if got := m.StageItems(obs.StageRRSample).Value(); got != want {
		t.Errorf("rr_sample items counter = %d, want %d (two complete stages + partial)", got, want)
	}
	if got := m.StageSeconds(obs.StageRRSample).Count(); got != 3 {
		t.Errorf("rr_sample histogram count = %d, want 3 stage spans", got)
	}
	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("trace has %d spans, want 3", len(spans))
	}
	for i, items := range []int64{128, 128, int64(ce.Done)} {
		if spans[i].Stage != obs.StageRRSample || spans[i].Items != items {
			t.Errorf("stage span %d = %+v, want rr_sample with %d items", i, spans[i], items)
		}
	}
}
