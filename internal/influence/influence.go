// Package influence implements the influence-propagation substrate of COD:
// the independent cascade (IC) and linear threshold (LT) models, forward
// Monte-Carlo simulation, reverse-reachable (RR) sets and the paper's RR
// graphs (Definition 2) together with induced RR graphs (Definition 3).
//
// Edge probabilities follow a Model: the default is the weighted cascade
// model of the paper, p(u,v) = 1/|N(v)| — the probability that u activates
// its neighbor v.
package influence

import (
	"math/rand/v2"

	"github.com/codsearch/cod/internal/graph"
)

// Model assigns the probability p(u, v) that an active u activates v.
type Model interface {
	// Prob returns p(u, v) for the directed activation u -> v. Implementations
	// may assume (u, v) is an edge of the graph they were built for.
	Prob(u, v graph.NodeID) float64
}

// WeightedCascade is the paper's default model: p(u,v) = 1/|N(v)|.
type WeightedCascade struct{ g *graph.Graph }

// NewWeightedCascade returns the weighted cascade model for g.
func NewWeightedCascade(g *graph.Graph) WeightedCascade { return WeightedCascade{g} }

// Prob implements Model.
func (m WeightedCascade) Prob(_, v graph.NodeID) float64 {
	return 1 / float64(m.g.Degree(v))
}

// Uniform assigns the same probability to every directed activation.
type Uniform struct{ P float64 }

// Prob implements Model.
func (m Uniform) Prob(_, _ graph.NodeID) float64 { return m.P }

// EdgeWeight uses the graph's edge weight, clamped to [0,1], as p(u,v).
type EdgeWeight struct{ G *graph.Graph }

// Prob implements Model.
func (m EdgeWeight) Prob(u, v graph.NodeID) float64 {
	w := m.G.EdgeWeight(u, v)
	if w > 1 {
		return 1
	}
	return w
}

// Spread runs one forward IC simulation from seed and returns the activated
// set size (including the seed).
func Spread(g *graph.Graph, model Model, seed graph.NodeID, rng *rand.Rand) int {
	active := make([]bool, g.N())
	active[seed] = true
	frontier := []graph.NodeID{seed}
	count := 1
	for len(frontier) > 0 {
		var next []graph.NodeID
		for _, u := range frontier {
			for _, v := range g.Neighbors(u) {
				if active[v] {
					continue
				}
				if rng.Float64() < model.Prob(u, v) {
					active[v] = true
					count++
					next = append(next, v)
				}
			}
		}
		frontier = next
	}
	return count
}

// MonteCarloInfluence estimates σ_g(seed) as the mean spread over rounds
// forward simulations. It is the slow ground-truth estimator used in tests.
func MonteCarloInfluence(g *graph.Graph, model Model, seed graph.NodeID, rounds int, rng *rand.Rand) float64 {
	total := 0
	for i := 0; i < rounds; i++ {
		total += Spread(g, model, seed, rng)
	}
	return float64(total) / float64(rounds)
}
