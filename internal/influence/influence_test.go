package influence

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/codsearch/cod/internal/graph"
)

func lineGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	edges := make([][2]graph.NodeID, 0, n-1)
	for i := 0; i < n-1; i++ {
		edges = append(edges, [2]graph.NodeID{graph.NodeID(i), graph.NodeID(i + 1)})
	}
	g, err := graph.FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestWeightedCascadeProb(t *testing.T) {
	g := lineGraph(t, 4) // degrees: 1,2,2,1
	m := NewWeightedCascade(g)
	if p := m.Prob(1, 0); p != 1 {
		t.Errorf("p(1,0) = %g, want 1 (deg(0)=1)", p)
	}
	if p := m.Prob(0, 1); p != 0.5 {
		t.Errorf("p(0,1) = %g, want 0.5", p)
	}
}

func TestSpreadDeterministicWhenP1(t *testing.T) {
	g := lineGraph(t, 6)
	rng := graph.NewRand(1)
	if got := Spread(g, Uniform{P: 1}, 0, rng); got != 6 {
		t.Errorf("spread with p=1 = %d, want 6", got)
	}
	if got := Spread(g, Uniform{P: 0}, 2, rng); got != 1 {
		t.Errorf("spread with p=0 = %d, want 1", got)
	}
}

func TestRRSetAlwaysContainsSource(t *testing.T) {
	g := graph.ErdosRenyi(50, 120, graph.NewRand(2))
	s := NewSampler(g, NewWeightedCascade(g), graph.NewRand(3))
	for i := 0; i < 200; i++ {
		set := s.RRSet()
		if len(set) == 0 {
			t.Fatal("empty RR set")
		}
		seen := map[graph.NodeID]bool{}
		for _, v := range set {
			if seen[v] {
				t.Fatal("duplicate node in RR set")
			}
			seen[v] = true
		}
	}
}

func TestRRGraphStructure(t *testing.T) {
	g := graph.ErdosRenyi(60, 180, graph.NewRand(4))
	s := NewSampler(g, NewWeightedCascade(g), graph.NewRand(5))
	for i := 0; i < 200; i++ {
		r := s.RRGraph()
		if r.Len() == 0 {
			t.Fatal("empty RR graph")
		}
		if int(r.Off[len(r.Nodes)]) != len(r.Adj) {
			t.Fatal("CSR offsets inconsistent")
		}
		// Every adjacency entry is a valid position; every non-source node is
		// reachable from the source (positions only ever enter via liveness).
		for _, p := range r.Adj {
			if p < 0 || int(p) >= r.Len() {
				t.Fatalf("bad position %d", p)
			}
		}
		reach := r.ReachableWithin(func(graph.NodeID) bool { return true })
		for i, ok := range reach {
			if !ok {
				t.Fatalf("node at position %d not reachable from source", i)
			}
		}
	}
}

func TestRRGraphP1IsComponent(t *testing.T) {
	g := lineGraph(t, 5)
	s := NewSampler(g, Uniform{P: 1}, graph.NewRand(6))
	r := s.RRGraphFrom(2)
	if r.Len() != 5 {
		t.Errorf("p=1 RR graph has %d nodes, want 5", r.Len())
	}
	// all 8 directed edges (4 undirected x 2) must be live
	if r.NumEdges() != 8 {
		t.Errorf("live edges = %d, want 8", r.NumEdges())
	}
}

// Theorem 1 sanity: RR-based influence estimates agree with forward Monte
// Carlo within sampling error.
func TestRREstimateMatchesMonteCarlo(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	g := graph.ErdosRenyi(40, 100, graph.NewRand(7))
	model := NewWeightedCascade(g)
	s := NewSampler(g, model, graph.NewRand(8))
	const theta = 60000
	rrs := s.Batch(theta)
	counts := EstimateAll(g, rrs)
	mcRng := graph.NewRand(9)
	for _, v := range []graph.NodeID{0, 7, 23} {
		est := InfluenceFromCount(counts[v], theta, g.N())
		mc := MonteCarloInfluence(g, model, v, 4000, mcRng)
		if math.Abs(est-mc) > 0.35*mc+0.5 {
			t.Errorf("node %d: RR estimate %.2f vs MC %.2f", v, est, mc)
		}
	}
}

// Theorem 2 sanity: induced RR graph reachability equals restricted RR sets
// in distribution. We check a stronger structural property on p=1: the
// induced reachable set is exactly the connected region of the restriction.
func TestInducedRRGraphP1(t *testing.T) {
	g := lineGraph(t, 7)
	s := NewSampler(g, Uniform{P: 1}, graph.NewRand(10))
	r := s.RRGraphFrom(3)
	// restrict to {2,3,4}: reachable must be exactly those
	keep := map[graph.NodeID]bool{2: true, 3: true, 4: true}
	reach := r.ReachableWithin(func(v graph.NodeID) bool { return keep[v] })
	got := 0
	for i, ok := range reach {
		if ok {
			if !keep[r.Nodes[i]] {
				t.Fatalf("non-member %d reachable", r.Nodes[i])
			}
			got++
		}
	}
	if got != 3 {
		t.Errorf("induced reachable = %d nodes, want 3", got)
	}
	// restriction not containing the source yields nothing
	reach = r.ReachableWithin(func(v graph.NodeID) bool { return v > 4 })
	for _, ok := range reach {
		if ok {
			t.Fatal("reachable despite source excluded")
		}
	}
}

func TestRestrictedSampling(t *testing.T) {
	g := graph.ErdosRenyi(40, 120, graph.NewRand(11))
	s := NewSampler(g, NewWeightedCascade(g), graph.NewRand(12))
	member := func(v graph.NodeID) bool { return v < 20 }
	for i := 0; i < 100; i++ {
		set := s.RRSetWithin(graph.NodeID(i%20), member)
		for _, v := range set {
			if v >= 20 {
				t.Fatalf("RRSetWithin escaped restriction: %d", v)
			}
		}
		r := s.RRGraphWithin(graph.NodeID(i%20), member)
		for _, v := range r.Nodes {
			if v >= 20 {
				t.Fatalf("RRGraphWithin escaped restriction: %d", v)
			}
		}
	}
}

// The restricted and unrestricted samplers must agree when the restriction
// is the whole graph (same rng stream, same coins).
func TestRestrictedEqualsUnrestricted(t *testing.T) {
	g := graph.ErdosRenyi(30, 90, graph.NewRand(13))
	s1 := NewSampler(g, NewWeightedCascade(g), graph.NewRand(14))
	s2 := NewSampler(g, NewWeightedCascade(g), graph.NewRand(14))
	all := func(graph.NodeID) bool { return true }
	for i := 0; i < 50; i++ {
		src := graph.NodeID(i % 30)
		r1 := s1.RRGraphFrom(src)
		r2 := s2.RRGraphWithin(src, all)
		if r1.Len() != r2.Len() || r1.NumEdges() != r2.NumEdges() {
			t.Fatalf("restricted(all) differs from unrestricted at %d", i)
		}
		for j := range r1.Nodes {
			if r1.Nodes[j] != r2.Nodes[j] {
				t.Fatalf("node order differs at %d", i)
			}
		}
	}
}

func TestSpreadWithin(t *testing.T) {
	g := lineGraph(t, 6)
	rng := graph.NewRand(15)
	got := SpreadWithin(g, Uniform{P: 1}, 2, func(v graph.NodeID) bool { return v >= 1 && v <= 4 }, rng)
	if got != 4 {
		t.Errorf("SpreadWithin = %d, want 4", got)
	}
}

// Property: RR graph node lists never contain duplicates and the source is
// always first.
func TestRRGraphProperty(t *testing.T) {
	g := graph.BarabasiAlbert(50, 2, graph.NewRand(16))
	s := NewSampler(g, NewWeightedCascade(g), graph.NewRand(17))
	check := func(srcRaw uint8) bool {
		src := graph.NodeID(int(srcRaw) % g.N())
		r := s.RRGraphFrom(src)
		if r.Source() != src {
			return false
		}
		seen := map[graph.NodeID]bool{}
		for _, v := range r.Nodes {
			if seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEdgeWeightModel(t *testing.T) {
	b := graph.NewBuilder(2, 0)
	if err := b.AddWeightedEdge(0, 1, 3); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	m := EdgeWeight{G: g}
	if p := m.Prob(0, 1); p != 1 {
		t.Errorf("weight clamp failed: %g", p)
	}
}
