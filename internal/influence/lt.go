package influence

import (
	"math/rand/v2"

	"github.com/codsearch/cod/internal/graph"
)

// Linear threshold (LT) support. The paper's framework works with any
// influence model whose possible worlds admit RR-set evaluation; for LT the
// live-edge possible world has every node select at most one in-neighbor
// (node v picks u with probability b(u,v), no one with 1 - Σ_u b(u,v)), so
// a reverse-reachable graph from a source is a path that either stops, or
// closes a cycle back into itself. The resulting RRGraph values plug into
// the same compressed COD evaluation as the IC ones.

// LTWeights assigns the LT edge weight b(u, v); for each v the weights over
// its in-neighbors must sum to at most 1.
type LTWeights interface {
	// Weight returns b(u, v) for an edge (u, v).
	Weight(u, v graph.NodeID) float64
}

// UniformLT is the standard degree-normalized LT instance: b(u,v) =
// 1/deg(v), mirroring the weighted cascade probabilities.
type UniformLT struct{ G *graph.Graph }

// Weight implements LTWeights.
func (w UniformLT) Weight(_, v graph.NodeID) float64 { return 1 / float64(w.G.Degree(v)) }

var (
	_ GraphSampler = (*Sampler)(nil)
	_ GraphSampler = (*LTSampler)(nil)
)

// LTSampler generates RR sets and RR graphs under the LT model. Like
// Sampler it is single-goroutine; use one per worker.
type LTSampler struct {
	g   *graph.Graph
	w   LTWeights
	rng *rand.Rand

	pos   []int32
	epoch []int32
	ver   int32
}

// NewLTSampler returns an LT sampler over g.
func NewLTSampler(g *graph.Graph, w LTWeights, rng *rand.Rand) *LTSampler {
	return &LTSampler{g: g, w: w, rng: rng,
		pos: make([]int32, g.N()), epoch: make([]int32, g.N())}
}

// SetRand rebinds the sampler to rng (see Sampler.SetRand).
func (s *LTSampler) SetRand(rng *rand.Rand) { s.rng = rng }

// pickInNeighbor samples v's live in-edge tail, or -1 when v selects no one.
func (s *LTSampler) pickInNeighbor(v graph.NodeID) graph.NodeID {
	x := s.rng.Float64()
	acc := 0.0
	for _, u := range s.g.Neighbors(v) {
		acc += s.w.Weight(u, v)
		if x < acc {
			return u
		}
	}
	return -1
}

// RRGraph samples one LT RR graph from a uniform random source.
func (s *LTSampler) RRGraph() *RRGraph {
	return s.RRGraphFrom(graph.NodeID(s.rng.IntN(s.g.N())))
}

// RRGraphFrom samples the LT RR graph rooted at src: the reverse walk along
// each node's single live in-edge, stopped at the first revisit.
func (s *LTSampler) RRGraphFrom(src graph.NodeID) *RRGraph {
	s.ver++
	r := &RRGraph{Nodes: []graph.NodeID{src}}
	s.pos[src] = 0
	s.epoch[src] = s.ver

	type liveEdge struct{ headPos, tail int32 }
	var live []liveEdge
	cur := src
	for {
		u := s.pickInNeighbor(cur)
		if u < 0 {
			break
		}
		if s.epoch[u] == s.ver {
			// cycle: record the closing edge, the walk cannot grow further
			live = append(live, liveEdge{s.pos[cur], s.pos[u]})
			break
		}
		s.epoch[u] = s.ver
		s.pos[u] = int32(len(r.Nodes))
		live = append(live, liveEdge{s.pos[cur], s.pos[u]})
		r.Nodes = append(r.Nodes, u)
		cur = u
	}
	r.Off = make([]int32, len(r.Nodes)+1)
	for _, e := range live {
		r.Off[e.headPos+1]++
	}
	for i := 1; i <= len(r.Nodes); i++ {
		r.Off[i] += r.Off[i-1]
	}
	r.Adj = make([]int32, len(live))
	cursor := make([]int32, len(r.Nodes))
	copy(cursor, r.Off[:len(r.Nodes)])
	for _, e := range live {
		r.Adj[cursor[e.headPos]] = e.tail
		cursor[e.headPos]++
	}
	return r
}

// RRGraphWithin samples the LT RR graph rooted at src confined to member
// nodes: the live in-edge of each node is chosen globally (the possible
// world does not depend on the community), but the reverse walk stops as
// soon as the chosen tail leaves the restriction — matching the induced
// RR graph semantics of Definition 3 for the LT live-edge worlds.
func (s *LTSampler) RRGraphWithin(src graph.NodeID, member func(graph.NodeID) bool) *RRGraph {
	s.ver++
	r := &RRGraph{Nodes: []graph.NodeID{src}}
	s.pos[src] = 0
	s.epoch[src] = s.ver

	type liveEdge struct{ headPos, tail int32 }
	var live []liveEdge
	cur := src
	for {
		u := s.pickInNeighbor(cur)
		if u < 0 || !member(u) {
			break
		}
		if s.epoch[u] == s.ver {
			live = append(live, liveEdge{s.pos[cur], s.pos[u]})
			break
		}
		s.epoch[u] = s.ver
		s.pos[u] = int32(len(r.Nodes))
		live = append(live, liveEdge{s.pos[cur], s.pos[u]})
		r.Nodes = append(r.Nodes, u)
		cur = u
	}
	r.Off = make([]int32, len(r.Nodes)+1)
	for _, e := range live {
		r.Off[e.headPos+1]++
	}
	for i := 1; i <= len(r.Nodes); i++ {
		r.Off[i] += r.Off[i-1]
	}
	r.Adj = make([]int32, len(live))
	cursor := make([]int32, len(r.Nodes))
	copy(cursor, r.Off[:len(r.Nodes)])
	for _, e := range live {
		r.Adj[cursor[e.headPos]] = e.tail
		cursor[e.headPos]++
	}
	return r
}

// Batch samples count LT RR graphs.
func (s *LTSampler) Batch(count int) []*RRGraph {
	out := make([]*RRGraph, count)
	for i := range out {
		out[i] = s.RRGraph()
	}
	return out
}

// SpreadLT runs one forward LT simulation from seed: thresholds are drawn
// uniformly per node and a node activates when the summed weight of its
// active in-neighbors reaches its threshold. Used as ground truth in tests.
func SpreadLT(g *graph.Graph, w LTWeights, seed graph.NodeID, rng *rand.Rand) int {
	n := g.N()
	threshold := make([]float64, n)
	for i := range threshold {
		threshold[i] = rng.Float64()
	}
	active := make([]bool, n)
	weightIn := make([]float64, n)
	active[seed] = true
	frontier := []graph.NodeID{seed}
	count := 1
	for len(frontier) > 0 {
		var next []graph.NodeID
		for _, u := range frontier {
			for _, v := range g.Neighbors(u) {
				if active[v] {
					continue
				}
				weightIn[v] += w.Weight(u, v)
				if weightIn[v] >= threshold[v] {
					active[v] = true
					count++
					next = append(next, v)
				}
			}
		}
		frontier = next
	}
	return count
}
