package influence

import (
	"math"
	"testing"

	"github.com/codsearch/cod/internal/graph"
)

func TestUniformLTWeightsSumToOne(t *testing.T) {
	g := graph.ErdosRenyi(30, 90, graph.NewRand(1))
	w := UniformLT{G: g}
	for v := graph.NodeID(0); int(v) < g.N(); v++ {
		sum := 0.0
		for _, u := range g.Neighbors(v) {
			sum += w.Weight(u, v)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("weights into %d sum to %f", v, sum)
		}
	}
}

func TestLTRRGraphIsReversePath(t *testing.T) {
	g := graph.ErdosRenyi(40, 120, graph.NewRand(2))
	s := NewLTSampler(g, UniformLT{G: g}, graph.NewRand(3))
	for i := 0; i < 300; i++ {
		r := s.RRGraph()
		if r.Len() == 0 {
			t.Fatal("empty LT RR graph")
		}
		// Every node has at most one live in-edge tail recorded at its
		// position (walk semantics), and no duplicates appear.
		seen := map[graph.NodeID]bool{}
		for _, v := range r.Nodes {
			if seen[v] {
				t.Fatal("duplicate node in LT RR graph")
			}
			seen[v] = true
		}
		for p := 0; p < r.Len(); p++ {
			if r.Off[p+1]-r.Off[p] > 1 {
				t.Fatalf("position %d has %d live in-edges, want <= 1", p, r.Off[p+1]-r.Off[p])
			}
		}
		// All nodes reachable from the source (it is a reverse walk).
		reach := r.ReachableWithin(func(graph.NodeID) bool { return true })
		for p, ok := range reach {
			if !ok {
				t.Fatalf("position %d unreachable", p)
			}
		}
	}
}

// Theorem 1 for LT: occurrence frequency in LT RR sets estimates LT spread.
func TestLTEstimateMatchesForwardSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	g := graph.BarabasiAlbert(30, 2, graph.NewRand(4))
	w := UniformLT{G: g}
	s := NewLTSampler(g, w, graph.NewRand(5))
	const theta = 60000
	counts := make([]int, g.N())
	for i := 0; i < theta; i++ {
		for _, v := range s.RRGraph().Nodes {
			counts[v]++
		}
	}
	rng := graph.NewRand(6)
	for _, v := range []graph.NodeID{0, 5, 20} {
		est := InfluenceFromCount(counts[v], theta, g.N())
		mc := 0.0
		const rounds = 4000
		for i := 0; i < rounds; i++ {
			mc += float64(SpreadLT(g, w, v, rng))
		}
		mc /= rounds
		if math.Abs(est-mc) > 0.35*mc+0.5 {
			t.Errorf("node %d: LT RR estimate %.2f vs forward %.2f", v, est, mc)
		}
	}
}

func TestLTSamplerDeterminism(t *testing.T) {
	g := graph.ErdosRenyi(25, 70, graph.NewRand(7))
	a := NewLTSampler(g, UniformLT{G: g}, graph.NewRand(8)).Batch(50)
	b := NewLTSampler(g, UniformLT{G: g}, graph.NewRand(8)).Batch(50)
	for i := range a {
		if a[i].Len() != b[i].Len() || a[i].Source() != b[i].Source() {
			t.Fatalf("batch %d differs", i)
		}
	}
}

func TestSpreadLTSeedOnly(t *testing.T) {
	// A node with zero-weight in-edges everywhere: spread is at least 1 and
	// at most n.
	g := graph.ErdosRenyi(20, 50, graph.NewRand(9))
	got := SpreadLT(g, UniformLT{G: g}, 3, graph.NewRand(10))
	if got < 1 || got > 20 {
		t.Errorf("spread = %d", got)
	}
}
