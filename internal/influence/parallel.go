package influence

import (
	"context"

	"github.com/codsearch/cod/internal/graph"
)

// ParallelBatch samples count RR graphs across workers goroutines. Each
// sample i draws from its own PRNG stream seeded by graph.ItemSeed(seed, i),
// so out[i] depends only on (g, model, seed, i): the result is byte-for-byte
// identical for any worker count or goroutine schedule. Workers reuse one
// Sampler (its scratch arrays are O(|V|)) and reseed its source per sample.
func ParallelBatch(g *graph.Graph, model Model, count int, seed uint64, workers int) []*RRGraph {
	out, _ := ParallelBatchCtx(context.Background(), g, model, count, seed, workers)
	return out
}
