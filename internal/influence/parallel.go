package influence

import (
	"sync"

	"github.com/codsearch/cod/internal/graph"
)

// ParallelBatch samples count RR graphs across workers goroutines, each with
// its own Sampler seeded deterministically from seed, so the result is
// reproducible for a fixed (seed, workers, count) triple. Samples are
// returned grouped by worker (worker w produces the w-th contiguous block).
func ParallelBatch(g *graph.Graph, model Model, count int, seed uint64, workers int) []*RRGraph {
	if workers < 1 {
		workers = 1
	}
	if workers > count {
		workers = count
	}
	out := make([]*RRGraph, count)
	if count == 0 {
		return out
	}
	per := count / workers
	extra := count % workers
	var wg sync.WaitGroup
	start := 0
	for w := 0; w < workers; w++ {
		n := per
		if w < extra {
			n++
		}
		lo, hi := start, start+n
		start = hi
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			s := NewSampler(g, model, graph.NewRand(seed^(uint64(w)+1)*0x9e3779b97f4a7c15))
			for i := lo; i < hi; i++ {
				out[i] = s.RRGraph()
			}
		}(w, lo, hi)
	}
	wg.Wait()
	return out
}
