package influence

import (
	"math/rand/v2"
	"sync"

	"github.com/codsearch/cod/internal/graph"
)

// ParallelBatch samples count RR graphs across workers goroutines. Each
// sample i draws from its own PRNG stream seeded by graph.ItemSeed(seed, i),
// so out[i] depends only on (g, model, seed, i): the result is byte-for-byte
// identical for any worker count or goroutine schedule. Workers reuse one
// Sampler (its scratch arrays are O(|V|)) and reseed its source per sample.
func ParallelBatch(g *graph.Graph, model Model, count int, seed uint64, workers int) []*RRGraph {
	if workers < 1 {
		workers = 1
	}
	if workers > count {
		workers = count
	}
	out := make([]*RRGraph, count)
	if count == 0 {
		return out
	}
	per := count / workers
	extra := count % workers
	var wg sync.WaitGroup
	start := 0
	for w := 0; w < workers; w++ {
		n := per
		if w < extra {
			n++
		}
		lo, hi := start, start+n
		start = hi
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			src := graph.NewPCG(0)
			s := NewSampler(g, model, rand.New(src))
			for i := lo; i < hi; i++ {
				graph.SeedPCG(src, graph.ItemSeed(seed, i))
				out[i] = s.RRGraph()
			}
		}(lo, hi)
	}
	wg.Wait()
	return out
}
