package influence

import (
	"context"
	"math/rand/v2"
	"sync"
	"sync/atomic"

	"github.com/codsearch/cod/internal/graph"
	"github.com/codsearch/cod/internal/obs"
)

// ParallelBatch samples count RR graphs across workers goroutines. Each
// sample i draws from its own PRNG stream seeded by graph.ItemSeed(seed, i),
// so out[i] depends only on (g, model, seed, i): the result is byte-for-byte
// identical for any worker count or goroutine schedule. Workers reuse one
// Sampler (its scratch arrays are O(|V|)) and reseed its source per sample.
func ParallelBatch(g *graph.Graph, model Model, count int, seed uint64, workers int) []*RRGraph {
	out, _ := ParallelBatchCtx(context.Background(), g, model, count, seed, workers)
	return out
}

// ParallelBatchCtx is ParallelBatch with bounded-interval cancellation:
// every worker checks ctx.Err() once per PollEvery samples and stops early
// when the context is done. An uncancelled call returns the same pool as
// ParallelBatch for the same arguments; a canceled call returns a
// *CanceledError counting the samples that completed across all workers
// (the pool slice has holes, so it is withheld). The fan-in always flushes
// the completed-sample total through the context Recorder — on early cancel
// the per-worker counts used to vanish with the discarded pool, which left
// metrics blind to how much sampling a shed query had already paid for.
func ParallelBatchCtx(ctx context.Context, g *graph.Graph, model Model, count int, seed uint64, workers int) ([]*RRGraph, error) {
	return ParallelBatchRangeCtx(ctx, g, model, 0, count, seed, workers)
}

// ParallelBatchRangeCtx samples items [lo, hi) of the per-item-seeded pool
// defined by (g, model, seed): out[j] is sample lo+j, drawn from the PRNG
// stream seeded by graph.ItemSeed(seed, lo+j). Because every item owns its
// stream, call boundaries are invisible — sampling [0, c₁), [c₁, c₂), …,
// [cₖ, total) stage by stage concatenates to the byte-identical pool a
// single [0, total) call produces. This is the stage-resumable parallel
// primitive behind adaptive evaluation's geometric schedule.
//
// Each stage call is its own rr_sample span, and the fan-in flushes the
// stage's completed-sample count through the context Recorder even when a
// cancel lands mid-stage — the same partial-progress contract as the
// non-staged path, with Done/Total in *CanceledError scoped to this call's
// range so staged callers can sum spans without double-counting.
func ParallelBatchRangeCtx(ctx context.Context, g *graph.Graph, model Model, lo, hi int, seed uint64, workers int) ([]*RRGraph, error) {
	count := hi - lo
	if count < 0 {
		count = 0
	}
	if workers < 1 {
		workers = 1
	}
	if workers > count {
		workers = count
	}
	span := obs.FromContext(ctx).StartSpan(obs.StageRRSample)
	out := make([]*RRGraph, count)
	if count == 0 {
		span.EndItems(0)
		return out, nil
	}
	per := count / workers
	extra := count % workers
	var done atomic.Int64
	var wg sync.WaitGroup
	start := 0
	for w := 0; w < workers; w++ {
		n := per
		if w < extra {
			n++
		}
		wlo, whi := start, start+n
		start = whi
		wg.Add(1)
		go func(wlo, whi int) {
			defer wg.Done()
			src := graph.NewPCG(0)
			s := NewSampler(g, model, rand.New(src))
			for j := wlo; j < whi; j++ {
				if (j-wlo)%PollEvery == 0 && ctx.Err() != nil {
					return
				}
				graph.SeedPCG(src, graph.ItemSeed(seed, lo+j))
				out[j] = s.RRGraph()
				done.Add(1)
			}
		}(wlo, whi)
	}
	wg.Wait()
	span.EndItems(int(done.Load()))
	if err := ctx.Err(); err != nil && int(done.Load()) < count {
		return nil, &CanceledError{Op: "influence: parallel rr batch",
			Done: int(done.Load()), Total: count, Cause: err}
	}
	return out, nil
}
