package influence

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"github.com/codsearch/cod/internal/graph"
	"github.com/codsearch/cod/internal/obs"
)

func TestParallelBatchDeterministic(t *testing.T) {
	g := graph.ErdosRenyi(50, 150, graph.NewRand(1))
	model := NewWeightedCascade(g)
	a := ParallelBatch(g, model, 200, 7, 4)
	b := ParallelBatch(g, model, 200, 7, 4)
	if len(a) != 200 || len(b) != 200 {
		t.Fatalf("lengths %d %d", len(a), len(b))
	}
	for i := range a {
		if a[i] == nil || b[i] == nil {
			t.Fatalf("nil sample at %d", i)
		}
		if a[i].Source() != b[i].Source() || a[i].Len() != b[i].Len() {
			t.Fatalf("sample %d differs across runs", i)
		}
	}
}

// rrBytes serializes a batch of RR graphs exactly (nodes, offsets, adjacency),
// so two batches compare byte-for-byte.
func rrBytes(t *testing.T, rrs []*RRGraph) string {
	t.Helper()
	out := ""
	for i, r := range rrs {
		if r == nil {
			t.Fatalf("nil sample at %d", i)
		}
		out += fmt.Sprintf("%d:%v|%v|%v\n", i, r.Nodes, r.Off, r.Adj)
	}
	return out
}

func TestParallelBatchWorkerCountInvariant(t *testing.T) {
	g := graph.BarabasiAlbert(60, 3, graph.NewRand(4))
	model := NewWeightedCascade(g)
	want := rrBytes(t, ParallelBatch(g, model, 300, 11, 1))
	for _, workers := range []int{2, 3, 8} {
		got := rrBytes(t, ParallelBatch(g, model, 300, 11, workers))
		if got != want {
			t.Fatalf("workers=%d batch differs from sequential batch", workers)
		}
	}
}

func TestParallelBatchEdgeCases(t *testing.T) {
	g := graph.ErdosRenyi(10, 20, graph.NewRand(2))
	model := NewWeightedCascade(g)
	if got := ParallelBatch(g, model, 0, 1, 4); len(got) != 0 {
		t.Error("count 0 should return empty")
	}
	if got := ParallelBatch(g, model, 3, 1, 16); len(got) != 3 {
		t.Error("workers > count mishandled")
	}
	if got := ParallelBatch(g, model, 5, 1, 0); len(got) != 5 {
		t.Error("workers 0 mishandled")
	}
}

// flipCtx is a context whose Err() flips to Canceled after a fixed number of
// calls, giving the cancellation a deterministic trigger point in the middle
// of a run (workers poll Err every PollEvery samples, so a plain canceled
// context would stop them before any work).
type flipCtx struct {
	context.Context
	calls  atomic.Int64
	nilFor int64
}

func (c *flipCtx) Err() error {
	if c.calls.Add(1) > c.nilFor {
		return context.Canceled
	}
	return nil
}

// TestParallelBatchCtxCancelFlushesSampleCounts locks the fan-in fix: when a
// parallel batch is canceled mid-run, the per-worker completed-sample counts
// must still reach the Recorder's rr_sample counter — they must match the
// Done the CanceledError reports, not vanish with the discarded pool.
func TestParallelBatchCtxCancelFlushesSampleCounts(t *testing.T) {
	g := graph.ErdosRenyi(60, 150, graph.NewRand(4))
	model := NewWeightedCascade(g)
	reg := obs.NewRegistry()
	m := obs.NewQueryMetrics(reg)
	tr := obs.NewTrace()
	ctx := obs.WithRecorder(
		context.Background(), obs.NewRecorder(m, tr))
	// Err returns nil for the first 3 polls, Canceled from the 4th: each of
	// the 2 workers covers 512 samples with a poll every 64, so the flip
	// lands mid-run — some samples complete, the run cannot finish.
	fc := &flipCtx{Context: ctx, nilFor: 3}

	_, err := ParallelBatchCtx(fc, g, model, 1024, 11, 2)
	var ce *CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("error %T is not *CanceledError (err=%v)", err, err)
	}
	if ce.Done <= 0 || ce.Done >= ce.Total {
		t.Fatalf("progress %d/%d is not a partial run", ce.Done, ce.Total)
	}
	if got := m.StageItems(obs.StageRRSample).Value(); got != int64(ce.Done) {
		t.Errorf("rr_sample items counter = %d, want the %d completed samples the error reports", got, ce.Done)
	}
	if got := m.StageSeconds(obs.StageRRSample).Count(); got != 1 {
		t.Errorf("rr_sample histogram count = %d, want 1", got)
	}
	// The partial span also lands in the trace with the same item count.
	if tr.Len() != 1 {
		t.Fatalf("trace has %d spans, want 1", tr.Len())
	}
	if s := tr.Spans()[0]; s.Stage != obs.StageRRSample || s.Items != int64(ce.Done) {
		t.Errorf("trace span = %+v, want rr_sample with %d items", s, ce.Done)
	}
}

// TestParallelBatchCtxCompleteFlushesSampleCounts is the uncancelled
// counterpart: a full run flushes exactly count samples.
func TestParallelBatchCtxCompleteFlushesSampleCounts(t *testing.T) {
	g := graph.ErdosRenyi(60, 150, graph.NewRand(4))
	model := NewWeightedCascade(g)
	reg := obs.NewRegistry()
	m := obs.NewQueryMetrics(reg)
	ctx := obs.WithRecorder(context.Background(), obs.NewRecorder(m, nil))
	if _, err := ParallelBatchCtx(ctx, g, model, 300, 11, 4); err != nil {
		t.Fatal(err)
	}
	if got := m.StageItems(obs.StageRRSample).Value(); got != 300 {
		t.Errorf("rr_sample items counter = %d, want 300", got)
	}
}

func TestParallelBatchStatisticallySane(t *testing.T) {
	g := graph.BarabasiAlbert(40, 2, graph.NewRand(3))
	model := NewWeightedCascade(g)
	rrs := ParallelBatch(g, model, 4000, 9, 8)
	counts := EstimateAll(g, rrs)
	// node 0 is a hub in BA graphs: its count should be well above average
	avg := 0
	for _, c := range counts {
		avg += c
	}
	avg /= len(counts)
	if counts[0] <= avg {
		t.Errorf("hub count %d not above average %d", counts[0], avg)
	}
}
