package influence

import (
	"fmt"
	"testing"

	"github.com/codsearch/cod/internal/graph"
)

func TestParallelBatchDeterministic(t *testing.T) {
	g := graph.ErdosRenyi(50, 150, graph.NewRand(1))
	model := NewWeightedCascade(g)
	a := ParallelBatch(g, model, 200, 7, 4)
	b := ParallelBatch(g, model, 200, 7, 4)
	if len(a) != 200 || len(b) != 200 {
		t.Fatalf("lengths %d %d", len(a), len(b))
	}
	for i := range a {
		if a[i] == nil || b[i] == nil {
			t.Fatalf("nil sample at %d", i)
		}
		if a[i].Source() != b[i].Source() || a[i].Len() != b[i].Len() {
			t.Fatalf("sample %d differs across runs", i)
		}
	}
}

// rrBytes serializes a batch of RR graphs exactly (nodes, offsets, adjacency),
// so two batches compare byte-for-byte.
func rrBytes(t *testing.T, rrs []*RRGraph) string {
	t.Helper()
	out := ""
	for i, r := range rrs {
		if r == nil {
			t.Fatalf("nil sample at %d", i)
		}
		out += fmt.Sprintf("%d:%v|%v|%v\n", i, r.Nodes, r.Off, r.Adj)
	}
	return out
}

func TestParallelBatchWorkerCountInvariant(t *testing.T) {
	g := graph.BarabasiAlbert(60, 3, graph.NewRand(4))
	model := NewWeightedCascade(g)
	want := rrBytes(t, ParallelBatch(g, model, 300, 11, 1))
	for _, workers := range []int{2, 3, 8} {
		got := rrBytes(t, ParallelBatch(g, model, 300, 11, workers))
		if got != want {
			t.Fatalf("workers=%d batch differs from sequential batch", workers)
		}
	}
}

func TestParallelBatchEdgeCases(t *testing.T) {
	g := graph.ErdosRenyi(10, 20, graph.NewRand(2))
	model := NewWeightedCascade(g)
	if got := ParallelBatch(g, model, 0, 1, 4); len(got) != 0 {
		t.Error("count 0 should return empty")
	}
	if got := ParallelBatch(g, model, 3, 1, 16); len(got) != 3 {
		t.Error("workers > count mishandled")
	}
	if got := ParallelBatch(g, model, 5, 1, 0); len(got) != 5 {
		t.Error("workers 0 mishandled")
	}
}

func TestParallelBatchStatisticallySane(t *testing.T) {
	g := graph.BarabasiAlbert(40, 2, graph.NewRand(3))
	model := NewWeightedCascade(g)
	rrs := ParallelBatch(g, model, 4000, 9, 8)
	counts := EstimateAll(g, rrs)
	// node 0 is a hub in BA graphs: its count should be well above average
	avg := 0
	for _, c := range counts {
		avg += c
	}
	avg /= len(counts)
	if counts[0] <= avg {
		t.Errorf("hub count %d not above average %d", counts[0], avg)
	}
}
