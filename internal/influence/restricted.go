package influence

import "github.com/codsearch/cod/internal/graph"

// Restricted sampling: RR sets and RR graphs of the IC process confined to a
// community C, keeping the *original* edge probabilities of the full graph
// (the paper's σ_C(v) restricts propagation to C but does not re-normalize
// p(u,v); Theorem 2's induced RR graphs rely on exactly this semantics).

// RRSetWithin samples an RR set rooted at src where propagation may only
// traverse nodes for which member reports true. src must be a member.
func (s *Sampler) RRSetWithin(src graph.NodeID, member func(graph.NodeID) bool) []graph.NodeID {
	s.ver++
	nodes := []graph.NodeID{src}
	s.epoch[src] = s.ver
	for qi := 0; qi < len(nodes); qi++ {
		v := nodes[qi]
		for _, u := range s.g.Neighbors(v) {
			if s.epoch[u] == s.ver || !member(u) {
				continue
			}
			if s.rng.Float64() < s.model.Prob(u, v) {
				s.epoch[u] = s.ver
				nodes = append(nodes, u)
			}
		}
	}
	return nodes
}

// RRGraphWithin samples an RR graph rooted at src confined to member nodes,
// with the same every-in-edge coin policy as RRGraphFrom so that induced RR
// graphs over sub-communities of the restriction remain faithful.
func (s *Sampler) RRGraphWithin(src graph.NodeID, member func(graph.NodeID) bool) *RRGraph {
	s.ver++
	r := &RRGraph{Nodes: []graph.NodeID{src}}
	s.pos[src] = 0
	s.epoch[src] = s.ver

	type liveEdge struct{ headPos, tail int32 }
	var live []liveEdge
	for qi := 0; qi < len(r.Nodes); qi++ {
		v := r.Nodes[qi]
		for _, u := range s.g.Neighbors(v) {
			if !member(u) {
				continue
			}
			if s.rng.Float64() >= s.model.Prob(u, v) {
				continue
			}
			if s.epoch[u] != s.ver {
				s.epoch[u] = s.ver
				s.pos[u] = int32(len(r.Nodes))
				r.Nodes = append(r.Nodes, u)
			}
			live = append(live, liveEdge{int32(qi), s.pos[u]})
		}
	}
	r.Off = make([]int32, len(r.Nodes)+1)
	for _, e := range live {
		r.Off[e.headPos+1]++
	}
	for i := 1; i <= len(r.Nodes); i++ {
		r.Off[i] += r.Off[i-1]
	}
	r.Adj = make([]int32, len(live))
	cursor := make([]int32, len(r.Nodes))
	copy(cursor, r.Off[:len(r.Nodes)])
	for _, e := range live {
		r.Adj[cursor[e.headPos]] = e.tail
		cursor[e.headPos]++
	}
	return r
}

// SpreadWithin runs one forward IC simulation from seed confined to member
// nodes, with original probabilities, returning the activated count.
func SpreadWithin(g *graph.Graph, model Model, seed graph.NodeID, member func(graph.NodeID) bool, rng interface{ Float64() float64 }) int {
	active := make(map[graph.NodeID]bool, 16)
	active[seed] = true
	frontier := []graph.NodeID{seed}
	count := 1
	for len(frontier) > 0 {
		var next []graph.NodeID
		for _, u := range frontier {
			for _, v := range g.Neighbors(u) {
				if active[v] || !member(v) {
					continue
				}
				if rng.Float64() < model.Prob(u, v) {
					active[v] = true
					count++
					next = append(next, v)
				}
			}
		}
		frontier = next
	}
	return count
}
