package influence

import (
	"math/rand/v2"

	"github.com/codsearch/cod/internal/graph"
)

// RRGraph is the paper's Definition 2: the nodes of an RR set together with
// the edges activated while generating it, rooted at the uniformly sampled
// source. Crucially for Theorem 2 (induced RR graphs), generation flips a
// coin for *every* in-edge of every visited node — not only edges that
// discover new nodes — so that reachability restricted to any community C
// is faithful to the underlying possible world.
//
// Adjacency is positional: node i's RR-neighbors (the tails u of live edges
// u->node[i]) are Adj[Off[i]:Off[i+1]], stored as indices into Nodes.
type RRGraph struct {
	// Nodes lists the member graph nodes; Nodes[0] is the source.
	Nodes []graph.NodeID
	// Off and Adj encode, per position i, the positions of nodes reachable
	// one reverse-step from Nodes[i] via live edges.
	Off []int32
	Adj []int32
}

// Source returns the sampled source node of the RR graph.
func (r *RRGraph) Source() graph.NodeID { return r.Nodes[0] }

// Len returns the number of nodes in the RR graph.
func (r *RRGraph) Len() int { return len(r.Nodes) }

// NumEdges returns the number of live edges recorded in the RR graph.
func (r *RRGraph) NumEdges() int { return len(r.Adj) }

// GraphSampler is the sampling interface the COD pipelines depend on; both
// the IC Sampler and the LTSampler implement it, which is how the framework
// supports multiple influence models (§II, "Influence Models").
type GraphSampler interface {
	// RRGraph samples one RR graph from a uniform random source.
	RRGraph() *RRGraph
	// RRGraphFrom samples one RR graph rooted at src.
	RRGraphFrom(src graph.NodeID) *RRGraph
	// RRGraphWithin samples one RR graph rooted at src with propagation
	// confined to member nodes (original probabilities).
	RRGraphWithin(src graph.NodeID, member func(graph.NodeID) bool) *RRGraph
	// Batch samples count RR graphs from uniform random sources.
	Batch(count int) []*RRGraph
}

// Sampler generates RR sets and RR graphs for one (graph, model) pair. It is
// not safe for concurrent use; create one Sampler per goroutine, each with
// its own rng.
type Sampler struct {
	g     *graph.Graph
	model Model
	rng   *rand.Rand

	// scratch, reused across samples
	pos   []int32 // node -> position in current sample, -1 when absent
	epoch []int32 // versioned visited marks to avoid clearing pos
	ver   int32
}

// NewSampler returns a Sampler over g under model, driven by rng.
func NewSampler(g *graph.Graph, model Model, rng *rand.Rand) *Sampler {
	s := &Sampler{g: g, model: model, rng: rng}
	s.pos = make([]int32, g.N())
	s.epoch = make([]int32, g.N())
	return s
}

// SetRand rebinds the sampler to rng. A pooled sampler keeps its per-graph
// visited marks and serves successive queries that each carry their own
// deterministic stream.
func (s *Sampler) SetRand(rng *rand.Rand) { s.rng = rng }

// RRSet samples one RR set: the source plus every node that reverse-reaches
// it through live edges. The result is a fresh slice with the source first.
func (s *Sampler) RRSet() []graph.NodeID {
	src := graph.NodeID(s.rng.IntN(s.g.N()))
	return s.RRSetFrom(src)
}

// RRSetFrom samples an RR set rooted at the given source.
func (s *Sampler) RRSetFrom(src graph.NodeID) []graph.NodeID {
	s.ver++
	nodes := []graph.NodeID{src}
	s.epoch[src] = s.ver
	for qi := 0; qi < len(nodes); qi++ {
		v := nodes[qi]
		for _, u := range s.g.Neighbors(v) {
			if s.epoch[u] == s.ver {
				continue
			}
			if s.rng.Float64() < s.model.Prob(u, v) {
				s.epoch[u] = s.ver
				nodes = append(nodes, u)
			}
		}
	}
	return nodes
}

// RRGraph samples one RR graph from a uniform source.
func (s *Sampler) RRGraph() *RRGraph {
	return s.RRGraphFrom(graph.NodeID(s.rng.IntN(s.g.N())))
}

// RRGraphFrom samples one RR graph rooted at src. Every in-edge (u, v) of
// every visited v gets an independent liveness coin with probability
// p(u, v); live edges are recorded even when u was already visited.
func (s *Sampler) RRGraphFrom(src graph.NodeID) *RRGraph {
	s.ver++
	r := &RRGraph{Nodes: []graph.NodeID{src}}
	s.pos[src] = 0
	s.epoch[src] = s.ver

	type liveEdge struct{ headPos, tail int32 }
	var live []liveEdge
	for qi := 0; qi < len(r.Nodes); qi++ {
		v := r.Nodes[qi]
		for _, u := range s.g.Neighbors(v) {
			if s.rng.Float64() >= s.model.Prob(u, v) {
				continue
			}
			if s.epoch[u] != s.ver {
				s.epoch[u] = s.ver
				s.pos[u] = int32(len(r.Nodes))
				r.Nodes = append(r.Nodes, u)
			}
			live = append(live, liveEdge{int32(qi), s.pos[u]})
		}
	}
	// Bucket live edges by head position into CSR form.
	r.Off = make([]int32, len(r.Nodes)+1)
	for _, e := range live {
		r.Off[e.headPos+1]++
	}
	for i := 1; i <= len(r.Nodes); i++ {
		r.Off[i] += r.Off[i-1]
	}
	r.Adj = make([]int32, len(live))
	cursor := make([]int32, len(r.Nodes))
	copy(cursor, r.Off[:len(r.Nodes)])
	for _, e := range live {
		r.Adj[cursor[e.headPos]] = e.tail
		cursor[e.headPos]++
	}
	return r
}

// Batch samples count RR graphs.
func (s *Sampler) Batch(count int) []*RRGraph {
	out := make([]*RRGraph, count)
	for i := range out {
		out[i] = s.RRGraph()
	}
	return out
}

// EstimateAll counts, for every node, the number of RR graphs containing a
// node reachable... more precisely: the number of RR graphs in which the
// node reverse-reaches the source through live edges (equivalently, appears
// in the RR graph at all, since membership implies reachability on the full
// graph). Influence estimates follow Theorem 1: σ(v) ≈ count[v]/Θ · |V|.
func EstimateAll(g *graph.Graph, rrs []*RRGraph) []int {
	counts := make([]int, g.N())
	for _, r := range rrs {
		for _, v := range r.Nodes {
			counts[v]++
		}
	}
	return counts
}

// InfluenceFromCount converts an RR occurrence count into an influence
// estimate on a graph (or community) with n nodes and theta samples.
func InfluenceFromCount(count, theta, n int) float64 {
	if theta == 0 {
		return 0
	}
	return float64(count) / float64(theta) * float64(n)
}

// ReachableWithin computes which positions of r are reachable from the
// source using only nodes for which keep reports true (the induced RR graph
// R(C) of Definition 3). The source itself must satisfy keep, otherwise the
// result is empty. The returned slice is indexed by position.
func (r *RRGraph) ReachableWithin(keep func(node graph.NodeID) bool) []bool {
	reach := make([]bool, len(r.Nodes))
	if len(r.Nodes) == 0 || !keep(r.Nodes[0]) {
		return reach
	}
	reach[0] = true
	queue := []int32{0}
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		for _, t := range r.Adj[r.Off[p]:r.Off[p+1]] {
			if !reach[t] && keep(r.Nodes[t]) {
				reach[t] = true
				queue = append(queue, t)
			}
		}
	}
	return reach
}
