package eventlog

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"

	"github.com/codsearch/cod/internal/obs"
)

// Key identifies one aggregation group: every event lands in exactly one
// (variant, predicate-key, outcome) cell.
type Key struct {
	Variant string
	Pred    string
	Outcome string
}

type exemplar struct {
	traceID string
	seconds float64
}

// group is the streaming digest of one Key: a fixed-bucket latency
// histogram with the latest exemplar trace per bucket, per-step-kind time
// totals, and the running max.
type group struct {
	count     int64
	sumSec    float64
	maxSec    float64
	buckets   []int64    // len(bounds)+1; last is +Inf
	exemplars []exemplar // parallel to buckets; zero traceID = none yet
	stepSec   map[string]float64
}

// Aggregator maintains streaming per-(variant, pred, outcome) latency and
// step-time digests over the event stream, each bucket carrying its most
// recent exemplar trace ID. It backs /debug/querystats (Snapshot) and the
// exemplar-annotated cod_query_event_seconds /metrics family
// (WriteMetrics). Memory is bounded by the number of distinct keys, which
// the closed variant/outcome vocabularies and the canonical predicate
// hashing keep proportional to real query shapes.
type Aggregator struct {
	mu     sync.Mutex
	bounds []float64
	groups map[Key]*group
}

// NewAggregator returns an empty aggregator over the standard latency
// buckets.
func NewAggregator() *Aggregator {
	return &Aggregator{bounds: obs.DefaultLatencyBuckets, groups: map[Key]*group{}}
}

// Observe folds one event into its group's digest.
func (a *Aggregator) Observe(e *Event) {
	if a == nil || e == nil {
		return
	}
	key := Key{Variant: e.VariantKey(), Pred: e.PredKey(), Outcome: e.Outcome}
	sec := e.Dur().Seconds()
	a.mu.Lock()
	defer a.mu.Unlock()
	g := a.groups[key]
	if g == nil {
		g = &group{
			buckets:   make([]int64, len(a.bounds)+1),
			exemplars: make([]exemplar, len(a.bounds)+1),
			stepSec:   map[string]float64{},
		}
		a.groups[key] = g
	}
	i := 0
	for i < len(a.bounds) && sec > a.bounds[i] {
		i++
	}
	g.buckets[i]++
	if e.TraceID != "" {
		g.exemplars[i] = exemplar{traceID: e.TraceID, seconds: sec}
	}
	g.count++
	g.sumSec += sec
	if sec > g.maxSec {
		g.maxSec = sec
	}
	for _, st := range e.Steps {
		g.stepSec[st.Kind] += float64(st.DurNS) / 1e9
	}
}

// StepStat is one step kind's cumulative wall-clock share within a group.
type StepStat struct {
	Kind    string  `json:"kind"`
	TotalMS float64 `json:"total_ms"`
}

// ExemplarRef points an aggregate back at a concrete query: the trace ID to
// grep the event log for, the latency it exemplifies, and the bucket bound
// it sits under.
type ExemplarRef struct {
	TraceID string  `json:"trace_id"`
	MS      float64 `json:"ms"`
	LE      string  `json:"le"`
}

// GroupStats is the JSON snapshot of one aggregation group.
type GroupStats struct {
	Variant   string        `json:"variant"`
	Pred      string        `json:"pred"`
	Outcome   string        `json:"outcome"`
	Count     int64         `json:"count"`
	MeanMS    float64       `json:"mean_ms"`
	P50MS     float64       `json:"p50_ms"`
	P90MS     float64       `json:"p90_ms"`
	P99MS     float64       `json:"p99_ms"`
	MaxMS     float64       `json:"max_ms"`
	Steps     []StepStat    `json:"steps,omitempty"`
	Exemplars []ExemplarRef `json:"exemplars,omitempty"`
}

// quantile interpolates the q-quantile (0 < q < 1) from the bucket counts,
// linearly within the deciding bucket; the open-ended +Inf bucket reports
// the observed max.
func (a *Aggregator) quantile(g *group, q float64) float64 {
	if g.count == 0 {
		return 0
	}
	target := q * float64(g.count)
	var cum int64
	for i, c := range g.buckets {
		if c == 0 {
			continue
		}
		prev := cum
		cum += c
		if float64(cum) < target {
			continue
		}
		if i == len(a.bounds) {
			return g.maxSec
		}
		lo := 0.0
		if i > 0 {
			lo = a.bounds[i-1]
		}
		frac := (target - float64(prev)) / float64(c)
		return lo + frac*(a.bounds[i]-lo)
	}
	return g.maxSec
}

// Snapshot returns the groups sorted by (variant, pred, outcome), each with
// interpolated latency percentiles, step-time totals, and its exemplars.
func (a *Aggregator) Snapshot() []GroupStats {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	keys := a.sortedKeys()
	out := make([]GroupStats, 0, len(keys))
	for _, k := range keys {
		g := a.groups[k]
		gs := GroupStats{
			Variant: k.Variant,
			Pred:    k.Pred,
			Outcome: k.Outcome,
			Count:   g.count,
			MeanMS:  1e3 * g.sumSec / float64(g.count),
			P50MS:   1e3 * a.quantile(g, 0.50),
			P90MS:   1e3 * a.quantile(g, 0.90),
			P99MS:   1e3 * a.quantile(g, 0.99),
			MaxMS:   1e3 * g.maxSec,
		}
		kinds := make([]string, 0, len(g.stepSec))
		for kind := range g.stepSec {
			kinds = append(kinds, kind)
		}
		sort.Strings(kinds)
		for _, kind := range kinds {
			gs.Steps = append(gs.Steps, StepStat{Kind: kind, TotalMS: 1e3 * g.stepSec[kind]})
		}
		for i, ex := range g.exemplars {
			if ex.traceID == "" {
				continue
			}
			le := "+Inf"
			if i < len(a.bounds) {
				le = formatBound(a.bounds[i])
			}
			gs.Exemplars = append(gs.Exemplars, ExemplarRef{TraceID: ex.traceID, MS: 1e3 * ex.seconds, LE: le})
		}
		out = append(out, gs)
	}
	return out
}

func formatBound(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// sortedKeys returns the group keys in (variant, pred, outcome) order.
// Callers hold a.mu.
func (a *Aggregator) sortedKeys() []Key {
	keys := make([]Key, 0, len(a.groups))
	for k := range a.groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Variant != keys[j].Variant {
			return keys[i].Variant < keys[j].Variant
		}
		if keys[i].Pred != keys[j].Pred {
			return keys[i].Pred < keys[j].Pred
		}
		return keys[i].Outcome < keys[j].Outcome
	})
	return keys
}

// MetricName is the family WriteMetrics emits; register WriteMetrics under
// it via Registry.Collector.
const MetricName = "cod_query_event_seconds"

// WriteMetrics renders the aggregator as one labeled histogram family in
// the Prometheus text format, each bucket annotated with its latest
// exemplar as an OpenMetrics-style "# {trace_id=...} value" suffix — the
// hook that lets a dashboard's slow bucket link straight to a logged
// query. Matches the Registry.Collector contract: the block includes its
// own # TYPE line and is internally sorted.
func (a *Aggregator) WriteMetrics(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", MetricName); err != nil {
		return err
	}
	a.mu.Lock()
	keys := a.sortedKeys()
	type row struct {
		k         Key
		buckets   []int64
		exemplars []exemplar
		sum       float64
		count     int64
	}
	rows := make([]row, 0, len(keys))
	for _, k := range keys {
		g := a.groups[k]
		rows = append(rows, row{
			k:         k,
			buckets:   append([]int64(nil), g.buckets...),
			exemplars: append([]exemplar(nil), g.exemplars...),
			sum:       g.sumSec,
			count:     g.count,
		})
	}
	a.mu.Unlock()

	for _, r := range rows {
		labels := fmt.Sprintf("variant=%q,pred=%q,outcome=%q", r.k.Variant, r.k.Pred, r.k.Outcome)
		var cum int64
		for i, c := range r.buckets {
			cum += c
			le := "+Inf"
			if i < len(a.bounds) {
				le = formatBound(a.bounds[i])
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{%s,le=%q} %d", MetricName, labels, le, cum); err != nil {
				return err
			}
			if ex := r.exemplars[i]; ex.traceID != "" {
				if _, err := fmt.Fprintf(w, " # {trace_id=%q} %s", ex.traceID, formatBound(ex.seconds)); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum{%s} %s\n", MetricName, labels, formatBound(r.sum)); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count{%s} %d\n", MetricName, labels, r.count); err != nil {
			return err
		}
	}
	return nil
}

// ServeHTTP answers GET /debug/querystats with the JSON snapshot. Other
// methods get the JSON 405 the rest of the serving surface uses.
func (a *Aggregator) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusMethodNotAllowed)
		fmt.Fprintf(w, "{\"error\":\"method %s not allowed\"}\n", r.Method)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(struct {
		Groups []GroupStats `json:"groups"`
	}{a.Snapshot()})
}
