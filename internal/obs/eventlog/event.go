// Package eventlog is the durable query-event pipeline: every query the
// serving stack answers is condensed into one canonical wide Event — trace
// ID, epoch, variant, normalized expression and predicate key, per-plan-step
// durations and outcomes, adaptive early-stop stats, cache disposition,
// status, duration, and a compact result fingerprint — serialized as one
// JSONL line into a size-rotated, fsync-on-rotate log. The log survives
// crashes (a torn final line is skipped on replay, nothing before it is
// lost), sampling is a deterministic function of the trace ID (the kept set
// replays identically), and the same Event feeds the in-process streaming
// aggregator behind /debug/querystats and the exemplar-carrying /metrics
// series. cmd/codlog reads the log offline.
package eventlog

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"strconv"
	"time"

	"github.com/codsearch/cod/internal/obs"
)

// Event outcome vocabulary: the closed classification every event carries
// and the aggregator groups by.
const (
	OutcomeOK       = "ok"
	OutcomeError    = "error"
	OutcomeCanceled = "canceled"
)

// Step is one plan step inside an Event: the engine's StepRecord shorn of
// span indices — what ran, what it decided, how long it took.
type Step struct {
	Variant string `json:"variant"`
	Kind    string `json:"kind"`
	Outcome string `json:"outcome"`
	DurNS   int64  `json:"dur_ns"`
	// Stages and Gap carry a bounded-error adaptive sample step's realized
	// stage count and certified margin; absent for non-staged steps.
	Stages int     `json:"stages,omitempty"`
	Gap    float64 `json:"gap,omitempty"`
}

// Adaptive summarizes a query's bounded-error staged evaluation: the stage
// its rank-k decision landed on, the certified normalized gap (the realized
// ε), and whether it stopped before exhausting the budget.
type Adaptive struct {
	Stages    int     `json:"stages"`
	Gap       float64 `json:"gap"`
	EarlyStop bool    `json:"early_stop"`
}

// Result is the compact fingerprint of a discover answer: enough to diff a
// replay without storing the member list. NodesFNV is NodesSum over the
// community's sorted members.
type Result struct {
	Found    bool   `json:"found"`
	Rank     int    `json:"rank,omitempty"`
	Size     int    `json:"size"`
	NodesFNV string `json:"nodes_fnv,omitempty"`
}

// Event is the canonical wide event of one served query — the single record
// the sink persists, the aggregator digests, and codlog analyzes. One query,
// one line; every field an after-the-fact investigation needs rides in it.
type Event struct {
	TraceID string    `json:"trace_id"`
	Time    time.Time `json:"time"`
	// Op is the serving route ("/discover", "/batch", ...) or the CLI
	// operation that produced the event.
	Op    string `json:"op"`
	Epoch uint64 `json:"epoch"`
	// Variant is the plan variant that answered ("CODL", ...); Expr the
	// normalized expression for expression-mode queries; Pred the
	// aggregation key of the predicate ("attr:<id>", the 16-hex DNF hash,
	// or "none").
	Variant string `json:"variant,omitempty"`
	Expr    string `json:"expr,omitempty"`
	Pred    string `json:"pred,omitempty"`
	// Node and Attr are the query arguments (-1 when the op has none, e.g.
	// a batch request).
	Node int64 `json:"node"`
	Attr int64 `json:"attr"`
	// Seed is the per-query seed as a decimal string (JSON numbers lose
	// precision above 2^53); it is what makes the event replayable. Empty
	// when the query never drew a seed (rejected input, batch requests).
	Seed    string `json:"seed,omitempty"`
	Status  int    `json:"status,omitempty"`
	Outcome string `json:"outcome"`
	DurNS   int64  `json:"dur_ns"`
	Err     string `json:"err,omitempty"`
	// Cache is the sample-cache disposition ("hit", "miss", "" when the
	// query never consulted the cache).
	Cache    string    `json:"cache,omitempty"`
	Steps    []Step    `json:"steps,omitempty"`
	Adaptive *Adaptive `json:"adaptive,omitempty"`
	Result   *Result   `json:"result,omitempty"`
}

// Dur returns the event's duration.
func (e *Event) Dur() time.Duration { return time.Duration(e.DurNS) }

// PredKey returns the event's predicate aggregation key, never empty:
// "none" stands in for events without one.
func (e *Event) PredKey() string {
	if e.Pred == "" {
		return "none"
	}
	return e.Pred
}

// VariantKey returns the event's variant aggregation key, never empty.
func (e *Event) VariantKey() string {
	if e.Variant == "" {
		return "none"
	}
	return e.Variant
}

// OutcomeForStatus classifies an HTTP status into the event outcome
// vocabulary: 2xx/3xx ok, 503/504 canceled (shutdown and deadline expiry —
// the statuses queryError maps context errors to), everything else error.
func OutcomeForStatus(status int) string {
	switch {
	case status < 400:
		return OutcomeOK
	case status == 503 || status == 504:
		return OutcomeCanceled
	default:
		return OutcomeError
	}
}

// New assembles an Event from a finished query's trace: trace ID, seed,
// plan steps, the adaptive summary (from the staged sample step, when one
// ran), and the cache disposition (from the sample step's outcome). The
// caller fills the serving-context fields (Epoch, Expr, Pred, Node, Attr,
// Result) it alone knows. tr may be nil.
func New(tr *obs.Trace, op string, start time.Time, d time.Duration, status int) *Event {
	e := &Event{
		Op:      op,
		Time:    start,
		Status:  status,
		Outcome: OutcomeForStatus(status),
		DurNS:   int64(d),
		Node:    -1,
		Attr:    -1,
	}
	if tr == nil {
		return e
	}
	e.TraceID = tr.ID()
	if seed, ok := tr.Seed(); ok {
		e.Seed = strconv.FormatUint(seed, 10)
	}
	steps := tr.Steps()
	if len(steps) == 0 {
		return e
	}
	e.Steps = make([]Step, len(steps))
	for i, st := range steps {
		e.Steps[i] = Step{
			Variant: st.Variant,
			Kind:    st.Kind,
			Outcome: st.Outcome,
			DurNS:   int64(st.Duration),
			Stages:  st.Stages,
			Gap:     st.Gap,
		}
		switch st.Outcome {
		case "cache_hit":
			e.Cache = "hit"
		case "cache_miss":
			e.Cache = "miss"
		}
		if st.Stages > 0 && e.Adaptive == nil {
			e.Adaptive = &Adaptive{
				Stages:    st.Stages,
				Gap:       st.Gap,
				EarlyStop: st.Outcome == "early_stop",
			}
		}
	}
	if e.Variant == "" {
		e.Variant = steps[0].Variant
	}
	return e
}

// NodesSum fingerprints a community's member list as the 16-hex FNV-64a of
// the node IDs in slice order (discover answers are sorted ascending, so
// equal communities hash equally). An empty list hashes to the FNV offset
// basis, distinguishing "found an empty set" from "no result recorded".
func NodesSum(nodes []int32) string {
	h := fnv.New64a()
	var buf [4]byte
	for _, v := range nodes {
		binary.LittleEndian.PutUint32(buf[:], uint32(v))
		h.Write(buf[:])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
