package eventlog

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/codsearch/cod/internal/faultfs"
	"github.com/codsearch/cod/internal/obs"
)

// mkEvent builds a deterministic OK event; the trace ID is seed-derived so
// sampling decisions replay across test runs.
func mkEvent(i int) *Event {
	return &Event{
		TraceID: obs.SeedTraceID(uint64(i) + 1),
		Time:    time.Unix(1700000000, int64(i)).UTC(),
		Op:      "/discover",
		Variant: "CODL",
		Pred:    "attr:0",
		Node:    int64(i),
		Attr:    0,
		Seed:    fmt.Sprintf("%d", i+1),
		Status:  200,
		Outcome: OutcomeOK,
		DurNS:   int64(i+1) * int64(time.Millisecond),
		Steps: []Step{
			{Variant: "CODL", Kind: "weight", Outcome: "lore", DurNS: 1000},
			{Variant: "CODL", Kind: "sample", Outcome: "cache_miss", DurNS: 2000},
		},
	}
}

func scanAll(t *testing.T, dir string) ([]*Event, ScanStats) {
	t.Helper()
	var got []*Event
	st, err := Scan(dir, func(e *Event) error {
		got = append(got, e)
		return nil
	})
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	return got, st
}

func TestSinkRoundTripAndRotation(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, MaxFileBytes: 512, SampleRate: 1, QueueSize: 64})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	const n = 20
	for i := 0; i < n; i++ {
		s.Record(mkEvent(i))
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if got := s.Stats(); got.Written != n || got.Dropped != 0 || got.SampledOut != 0 {
		t.Fatalf("Stats = %+v, want Written=%d Dropped=0 SampledOut=0", got, n)
	}
	if s.Stats().Rotations == 0 {
		t.Fatalf("expected at least one rotation with MaxFileBytes=512")
	}
	files, err := Files(dir)
	if err != nil {
		t.Fatalf("Files: %v", err)
	}
	if len(files) < 2 {
		t.Fatalf("expected rotation to produce >= 2 files, got %v", files)
	}
	got, st := scanAll(t, dir)
	if st.Torn != 0 || st.Corrupt != 0 || len(got) != n {
		t.Fatalf("scan: %d events, stats %+v, want %d clean", len(got), st, n)
	}
	for i, e := range got {
		want := mkEvent(i)
		if e.TraceID != want.TraceID || e.Node != want.Node || e.Seed != want.Seed {
			t.Fatalf("event %d = %+v, want %+v", i, e, want)
		}
		if len(e.Steps) != 2 || e.Steps[1].Outcome != "cache_miss" {
			t.Fatalf("event %d steps = %+v", i, e.Steps)
		}
	}
}

// TestSinkFreshFilePerOpen: a reopened sink continues the file sequence
// instead of appending to a predecessor's (possibly torn) tail.
func TestSinkFreshFilePerOpen(t *testing.T) {
	dir := t.TempDir()
	for run := 0; run < 2; run++ {
		s, err := Open(Options{Dir: dir, SampleRate: 1})
		if err != nil {
			t.Fatalf("Open run %d: %v", run, err)
		}
		s.Record(mkEvent(run))
		if err := s.Close(); err != nil {
			t.Fatalf("Close run %d: %v", run, err)
		}
	}
	files, _ := Files(dir)
	if len(files) != 2 {
		t.Fatalf("want one file per run, got %v", files)
	}
	got, st := scanAll(t, dir)
	if len(got) != 2 || st.Torn != 0 {
		t.Fatalf("scan after two runs: %d events, %+v", len(got), st)
	}
}

func TestKeepTraceDeterministic(t *testing.T) {
	const rate = 0.5
	kept := map[string]bool{}
	for i := 0; i < 2000; i++ {
		id := obs.SeedTraceID(uint64(i))
		kept[id] = KeepTrace(id, rate)
	}
	keptN := 0
	for i := 0; i < 2000; i++ {
		id := obs.SeedTraceID(uint64(i))
		if KeepTrace(id, rate) != kept[id] {
			t.Fatalf("KeepTrace(%s, %v) changed between calls", id, rate)
		}
		if kept[id] {
			keptN++
		}
	}
	// The kept fraction should be near the rate (hash uniformity).
	if keptN < 800 || keptN > 1200 {
		t.Fatalf("kept %d of 2000 at rate 0.5; hash badly skewed", keptN)
	}
	if !KeepTrace("anything", 1) || KeepTrace("anything", 0) {
		t.Fatalf("rate bounds: 1 must keep, 0 must drop")
	}
}

func TestKeepHeadTailRule(t *testing.T) {
	slow := 50 * time.Millisecond
	errEvent := mkEvent(0)
	errEvent.Outcome = OutcomeError
	if !Keep(errEvent, 0, slow) {
		t.Fatalf("error events must always be kept")
	}
	slowEvent := mkEvent(1)
	slowEvent.DurNS = int64(slow)
	if !Keep(slowEvent, 0, slow) {
		t.Fatalf("slow events must always be kept")
	}
	fastOK := mkEvent(2)
	fastOK.DurNS = int64(time.Millisecond)
	if Keep(fastOK, 0, slow) {
		t.Fatalf("fast OK events must pass through the sampling gate")
	}
	if !Keep(fastOK, 1, slow) {
		t.Fatalf("rate 1 keeps everything")
	}
}

// TestSampledCaptureDeterminism: two sinks capturing the same event stream
// at the same rate keep exactly the same set.
func TestSampledCaptureDeterminism(t *testing.T) {
	const rate = 0.4
	capture := func() []string {
		dir := t.TempDir()
		s, err := Open(Options{Dir: dir, SampleRate: rate, QueueSize: 256})
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		for i := 0; i < 100; i++ {
			s.Record(mkEvent(i))
		}
		if err := s.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		got, _ := scanAll(t, dir)
		ids := make([]string, len(got))
		for i, e := range got {
			ids[i] = e.TraceID
		}
		return ids
	}
	a, b := capture(), capture()
	if len(a) == 0 || len(a) == 100 {
		t.Fatalf("rate %v kept %d of 100; expected a strict subset", rate, len(a))
	}
	if strings.Join(a, ",") != strings.Join(b, ",") {
		t.Fatalf("same stream, same rate, different kept sets:\n%v\n%v", a, b)
	}
}

// tornFile adapts faultfs.TornWriter over an os.File to the FileWriter
// seam: writes tear silently after Keep bytes while Sync/Close stay honest,
// modeling power loss with a lying disk cache.
type tornFile struct {
	f *os.File
	w *faultfs.TornWriter
}

func (t *tornFile) Write(p []byte) (int, error) { return t.w.Write(p) }
func (t *tornFile) Sync() error                 { return t.f.Sync() }
func (t *tornFile) Close() error                { return t.f.Close() }

// TestCrashRecoveryTornWriter: a torn final line (the classic crash) is
// skipped on replay and no event before it is lost.
func TestCrashRecoveryTornWriter(t *testing.T) {
	const n = 10
	const intact = 6 // events whose lines fully precede the tear
	var healthy int64
	for i := 0; i < intact; i++ {
		line, err := json.Marshal(mkEvent(i))
		if err != nil {
			t.Fatal(err)
		}
		healthy += int64(len(line)) + 1
	}
	dir := t.TempDir()
	s, err := Open(Options{
		Dir:        dir,
		SampleRate: 1,
		OpenFile: func(path string) (FileWriter, error) {
			f, err := os.Create(path)
			if err != nil {
				return nil, err
			}
			// Tear 10 bytes into event `intact`'s line.
			return &tornFile{f: f, w: &faultfs.TornWriter{W: f, Keep: healthy + 10}}, nil
		},
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < n; i++ {
		s.Record(mkEvent(i))
	}
	// The writing process observes total success — the tear is invisible
	// until replay, exactly like a real torn write.
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	got, st := scanAll(t, dir)
	if st.Torn != 1 {
		t.Fatalf("scan stats %+v, want exactly one torn tail", st)
	}
	if len(got) != intact {
		t.Fatalf("recovered %d events, want %d (everything before the tear)", len(got), intact)
	}
	for i, e := range got {
		if e.TraceID != obs.SeedTraceID(uint64(i)+1) {
			t.Fatalf("event %d has trace %s; pre-tear events must survive intact", i, e.TraceID)
		}
	}
}

func TestScanCorruptLineSkipped(t *testing.T) {
	dir := t.TempDir()
	good, _ := json.Marshal(mkEvent(0))
	content := string(good) + "\n" + "{not json}\n" + string(good) + "\n"
	if err := os.WriteFile(filepath.Join(dir, "events-00000001.jsonl"), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	got, st := scanAll(t, dir)
	if len(got) != 2 || st.Corrupt != 1 || st.Torn != 0 {
		t.Fatalf("got %d events, stats %+v; want 2 events, 1 corrupt", len(got), st)
	}
}

func TestScanErrStop(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, SampleRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		s.Record(mkEvent(i))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	seen := 0
	_, err = Scan(dir, func(*Event) error {
		seen++
		return ErrStop
	})
	if err != nil || seen != 1 {
		t.Fatalf("ErrStop: err=%v seen=%d, want nil err after 1 event", err, seen)
	}
}

func TestFollowDeliversAppendedEvents(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, SampleRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.Record(mkEvent(0))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	got := make(chan string, 8)
	done := make(chan error, 1)
	go func() {
		done <- Follow(ctx, dir, 5*time.Millisecond, func(e *Event) error {
			got <- e.TraceID
			return nil
		})
	}()
	want := func(id string) {
		t.Helper()
		select {
		case g := <-got:
			if g != id {
				t.Fatalf("followed %s, want %s", g, id)
			}
		case <-ctx.Done():
			t.Fatalf("timed out waiting for %s", id)
		}
	}
	want(mkEvent(0).TraceID)

	// Append a complete line plus a dangling partial one: Follow must
	// deliver the complete line and hold the partial until it completes.
	files, _ := Files(dir)
	f, err := os.OpenFile(files[len(files)-1], os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	line1, _ := json.Marshal(mkEvent(1))
	line2, _ := json.Marshal(mkEvent(2))
	if _, err := f.Write(append(line1, '\n')); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(line2[:10]); err != nil {
		t.Fatal(err)
	}
	want(mkEvent(1).TraceID)
	if _, err := f.Write(append(line2[10:], '\n')); err != nil {
		t.Fatal(err)
	}
	want(mkEvent(2).TraceID)
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("Follow: %v", err)
	}
}

func TestAggregatorSnapshotAndMetrics(t *testing.T) {
	a := NewAggregator()
	for i := 0; i < 10; i++ {
		a.Observe(mkEvent(i))
	}
	slow := mkEvent(99)
	slow.Outcome = OutcomeCanceled
	slow.DurNS = int64(2 * time.Second)
	a.Observe(slow)

	snap := a.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot groups = %d, want 2 (ok + canceled)", len(snap))
	}
	ok := snap[0]
	if ok.Outcome == OutcomeCanceled {
		ok = snap[1]
	}
	if ok.Variant != "CODL" || ok.Pred != "attr:0" || ok.Count != 10 {
		t.Fatalf("ok group = %+v", ok)
	}
	if ok.P50MS <= 0 || ok.P99MS < ok.P50MS || ok.MaxMS < ok.P99MS {
		t.Fatalf("percentiles not monotone: %+v", ok)
	}
	if len(ok.Steps) != 2 || ok.Steps[0].Kind != "sample" && ok.Steps[0].Kind != "weight" {
		t.Fatalf("step stats = %+v", ok.Steps)
	}
	if len(ok.Exemplars) == 0 {
		t.Fatalf("ok group has no exemplars")
	}

	var b strings.Builder
	if err := a.WriteMetrics(&b); err != nil {
		t.Fatalf("WriteMetrics: %v", err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE cod_query_event_seconds histogram",
		`cod_query_event_seconds_bucket{variant="CODL",pred="attr:0",outcome="ok",le=`,
		`# {trace_id="` + mkEvent(0).TraceID + `"}`,
		`cod_query_event_seconds_count{variant="CODL",pred="attr:0",outcome="ok"} 10`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics output missing %q:\n%s", want, out)
		}
	}

	// The collector hook renders the family through the shared registry.
	reg := obs.NewRegistry()
	reg.Collector(MetricName, a.WriteMetrics)
	var pb strings.Builder
	if err := reg.WritePrometheus(&pb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	if !strings.Contains(pb.String(), "# {trace_id=") {
		t.Fatalf("registry output lost the exemplar comments:\n%s", pb.String())
	}
}

func TestEventFromTrace(t *testing.T) {
	tr := obs.NewTrace()
	rec := obs.NewRecorder(nil, tr)
	rec.EnsureTraceID(42)
	sp := rec.StartStep("CODL", "sample")
	sp.EndStaged("early_stop", 3, 0.25)
	sp2 := rec.StartStep("CODL", "evaluate")
	sp2.End("ok")

	e := New(tr, "/discover", time.Unix(1700000000, 0), 5*time.Millisecond, 200)
	if e.TraceID != obs.SeedTraceID(42) {
		t.Fatalf("trace ID = %s", e.TraceID)
	}
	if e.Seed != "42" {
		t.Fatalf("seed = %q, want 42", e.Seed)
	}
	if e.Outcome != OutcomeOK || e.Variant != "CODL" || len(e.Steps) != 2 {
		t.Fatalf("event = %+v", e)
	}
	if e.Adaptive == nil || e.Adaptive.Stages != 3 || !e.Adaptive.EarlyStop || e.Adaptive.Gap != 0.25 {
		t.Fatalf("adaptive = %+v", e.Adaptive)
	}
	if OutcomeForStatus(504) != OutcomeCanceled || OutcomeForStatus(400) != OutcomeError {
		t.Fatalf("OutcomeForStatus vocabulary drifted")
	}
}

func TestNodesSum(t *testing.T) {
	a := NodesSum([]int32{1, 2, 3})
	b := NodesSum([]int32{1, 2, 3})
	c := NodesSum([]int32{1, 2, 4})
	if a != b || a == c || len(a) != 16 {
		t.Fatalf("NodesSum: a=%s b=%s c=%s", a, b, c)
	}
	if NodesSum(nil) == "" {
		t.Fatalf("empty list must still fingerprint")
	}
}
