package eventlog

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// ErrStop may be returned by a Scan or Follow callback to end iteration
// early without error.
var ErrStop = errors.New("eventlog: stop")

// Files lists the event-log files of dir in chronological (= lexical)
// order. A missing directory yields an empty list, not an error: "no log
// yet" is a normal state for every reader.
func Files(dir string) ([]string, error) {
	files, err := filepath.Glob(filepath.Join(dir, "events-*.jsonl"))
	if err != nil {
		return nil, fmt.Errorf("eventlog: listing %s: %w", dir, err)
	}
	sort.Strings(files)
	return files, nil
}

// ScanStats reports what a Scan saw: complete events delivered, torn final
// lines skipped (the crash-tolerance contract), and corrupt complete lines
// skipped (bit rot, partial page recovery).
type ScanStats struct {
	Files   int
	Events  int
	Torn    int
	Corrupt int
}

// Scan replays every event of dir's log in write order, calling fn for
// each. A file's final line missing its newline is a torn write from a
// crash: it is skipped and counted, and every event before it is delivered
// — the crash loses at most the one line that was in flight. A complete
// line that fails to parse is counted corrupt and skipped. fn may return
// ErrStop to end the scan early.
func Scan(dir string, fn func(*Event) error) (ScanStats, error) {
	files, err := Files(dir)
	if err != nil {
		return ScanStats{}, err
	}
	var st ScanStats
	for _, path := range files {
		st.Files++
		data, err := os.ReadFile(path)
		if err != nil {
			return st, fmt.Errorf("eventlog: reading %s: %w", path, err)
		}
		stop, err := scanBytes(data, &st, fn)
		if err != nil || stop {
			return st, err
		}
	}
	return st, nil
}

// scanBytes delivers the complete lines of one file's contents, reporting
// whether the callback asked to stop.
func scanBytes(data []byte, st *ScanStats, fn func(*Event) error) (bool, error) {
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			// No terminating newline: the crash-torn tail. Skip it; every
			// line before it was delivered intact.
			st.Torn++
			return false, nil
		}
		line := data[:nl]
		data = data[nl+1:]
		if len(line) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(line, &e); err != nil {
			st.Corrupt++
			continue
		}
		st.Events++
		if err := fn(&e); err != nil {
			if errors.Is(err, ErrStop) {
				return true, nil
			}
			return true, err
		}
	}
	return false, nil
}

// Follow is the tail -f of the event log: it delivers every complete event
// already in dir, then polls for growth — new lines on the newest file, new
// files from rotation — at the given interval until ctx is done (which
// returns nil: following until canceled is the normal exit). Only complete
// lines are delivered; a line still being written (or torn by a crash) is
// retried on the next poll from the same offset, so rotation later makes
// torn tails permanent skips exactly as Scan would.
func Follow(ctx context.Context, dir string, poll time.Duration, fn func(*Event) error) error {
	if poll <= 0 {
		poll = 250 * time.Millisecond
	}
	offsets := map[string]int64{}
	var st ScanStats
	for {
		files, err := Files(dir)
		if err != nil {
			return err
		}
		for _, path := range files {
			stop, err := followFile(path, offsets, &st, fn)
			if err != nil || stop {
				return err
			}
		}
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(poll):
		}
	}
}

// followFile delivers the complete lines of path beyond the consumed
// offset, advancing the offset only past delivered (or corrupt-skipped)
// lines so an in-flight tail is re-examined next poll.
func followFile(path string, offsets map[string]int64, st *ScanStats, fn func(*Event) error) (bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return false, fmt.Errorf("eventlog: opening %s: %w", path, err)
	}
	defer f.Close()
	off := offsets[path]
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		return false, fmt.Errorf("eventlog: seeking %s: %w", path, err)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		return false, fmt.Errorf("eventlog: reading %s: %w", path, err)
	}
	nl := bytes.LastIndexByte(data, '\n')
	if nl < 0 {
		return false, nil
	}
	data = data[:nl+1]
	offsets[path] = off + int64(len(data))
	return scanBytes(data, st, fn)
}
