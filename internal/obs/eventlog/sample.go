package eventlog

import (
	"hash/fnv"
	"time"
)

// KeepTrace reports whether a trace ID survives OK-event sampling at rate
// (0 drops everything, 1 keeps everything). The decision is a pure function
// of the trace ID — FNV-64a of its bytes mapped to [0,1) and compared to the
// rate — so a capture taken at a given rate is replayable: the same IDs are
// kept on every replica, every restart, and every re-run of the workload.
func KeepTrace(traceID string, rate float64) bool {
	if rate >= 1 {
		return true
	}
	if rate <= 0 {
		return false
	}
	h := fnv.New64a()
	h.Write([]byte(traceID))
	return float64(h.Sum64())/(1<<64) < rate
}

// Keep is the head/tail sampling rule of the event log: slow events (at or
// over slowAfter) and non-OK events are always kept — the tail an
// investigation needs must never be sampled away — while OK events below the
// threshold pass through the deterministic KeepTrace gate.
func Keep(e *Event, rate float64, slowAfter time.Duration) bool {
	if e.Outcome != OutcomeOK {
		return true
	}
	if slowAfter > 0 && e.Dur() >= slowAfter {
		return true
	}
	return KeepTrace(e.TraceID, rate)
}
