package eventlog

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"github.com/codsearch/cod/internal/obs"
)

// FileWriter is the sink's write target: an os.File in production, a
// fault-injecting wrapper (faultfs.TornWriter over a file) in crash tests.
type FileWriter interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
}

// Options configures a Sink. Zero values select the defaults noted on each
// field.
type Options struct {
	// Dir is the log directory (created if absent). Required.
	Dir string
	// MaxFileBytes rotates the current file once appending the next event
	// would exceed it (<= 0 selects 64 MiB). Rotation syncs the finished
	// file to stable storage before the next one opens, so a crash can only
	// tear the line most recently in flight.
	MaxFileBytes int64
	// SampleRate is the deterministic keep rate for OK events (slow and
	// non-OK events are always kept); 1 keeps everything, 0 keeps only the
	// always-kept tail. Callers pass the rate verbatim — there is no
	// "unset" sentinel, so 0 means 0.
	SampleRate float64
	// SlowAfter is the latency at or above which an OK event bypasses
	// sampling (<= 0 selects obs.DefaultSlowAfter), aligned with the flight
	// recorder's slow classification.
	SlowAfter time.Duration
	// QueueSize bounds the buffered channel between Record and the writer
	// goroutine (<= 0 selects 1024). A full queue drops the event and
	// counts it — recording never blocks a query.
	QueueSize int
	// OpenFile opens a log file for writing; nil selects os.Create. Tests
	// substitute fault-injecting writers here.
	OpenFile func(path string) (FileWriter, error)
}

// Stats is a point-in-time snapshot of a Sink's counters.
type Stats struct {
	// Written counts events durably handed to the current file.
	Written int64
	// Dropped counts events lost to a full queue.
	Dropped int64
	// SampledOut counts OK events the deterministic sampler skipped.
	SampledOut int64
	// Rotations counts finished (synced and closed) log files.
	Rotations int64
}

// Sink is the asynchronous event-log writer: Record enqueues (never blocks,
// never touches the filesystem on the caller's goroutine) and a single
// writer goroutine appends one JSONL line per event to size-rotated
// events-XXXXXXXX.jsonl files. Each line is written in one Write call, so a
// crash tears at most the final line — which Scan skips. A Sink opens a
// fresh file per process (it never appends to a predecessor's possibly-torn
// tail), syncs on rotation and on Close, and is safe for concurrent Record.
type Sink struct {
	opts Options
	ch   chan *Event
	done chan struct{}
	once sync.Once

	written    atomic.Int64
	dropped    atomic.Int64
	sampledOut atomic.Int64
	rotations  atomic.Int64
	lastErr    atomic.Pointer[error]

	// Writer-goroutine state; never touched by Record.
	cur     FileWriter
	curSize int64
	nextIdx int
}

func osOpenFile(path string) (FileWriter, error) { return os.Create(path) }

// eventFilePattern names log files so lexical order is chronological order.
const eventFilePattern = "events-%08d.jsonl"

// Open creates the log directory if needed, opens the next log file in the
// sequence (existing files from prior runs are preserved and never appended
// to), and starts the writer goroutine.
func Open(opts Options) (*Sink, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("eventlog: Options.Dir is required")
	}
	if opts.MaxFileBytes <= 0 {
		opts.MaxFileBytes = 64 << 20
	}
	if opts.SlowAfter <= 0 {
		opts.SlowAfter = obs.DefaultSlowAfter
	}
	if opts.QueueSize <= 0 {
		opts.QueueSize = 1024
	}
	if opts.OpenFile == nil {
		opts.OpenFile = osOpenFile
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("eventlog: creating %s: %w", opts.Dir, err)
	}
	s := &Sink{
		opts: opts,
		ch:   make(chan *Event, opts.QueueSize),
		done: make(chan struct{}),
	}
	files, err := Files(opts.Dir)
	if err != nil {
		return nil, err
	}
	s.nextIdx = 1
	for _, f := range files {
		var idx int
		if _, err := fmt.Sscanf(filepath.Base(f), eventFilePattern, &idx); err == nil && idx >= s.nextIdx {
			s.nextIdx = idx + 1
		}
	}
	if err := s.openNext(); err != nil {
		return nil, err
	}
	go s.run()
	return s, nil
}

func (s *Sink) openNext() error {
	path := filepath.Join(s.opts.Dir, fmt.Sprintf(eventFilePattern, s.nextIdx))
	w, err := s.opts.OpenFile(path)
	if err != nil {
		return fmt.Errorf("eventlog: opening %s: %w", path, err)
	}
	s.cur = w
	s.curSize = 0
	s.nextIdx++
	return nil
}

// Record enqueues an event for asynchronous persistence, applying the
// head/tail sampling rule first. It never blocks: a full queue drops the
// event and counts the drop. Nil-safe — a nil Sink (logging disabled) costs
// one branch.
func (s *Sink) Record(e *Event) {
	if s == nil || e == nil {
		return
	}
	if !Keep(e, s.opts.SampleRate, s.opts.SlowAfter) {
		s.sampledOut.Add(1)
		return
	}
	select {
	case s.ch <- e:
	default:
		s.dropped.Add(1)
	}
}

func (s *Sink) run() {
	defer close(s.done)
	for e := range s.ch {
		s.write(e)
	}
	if s.cur != nil {
		if err := s.cur.Sync(); err != nil {
			s.setErr(err)
		}
		if err := s.cur.Close(); err != nil {
			s.setErr(err)
		}
		s.cur = nil
	}
}

func (s *Sink) write(e *Event) {
	line, err := json.Marshal(e)
	if err != nil {
		s.setErr(err)
		return
	}
	line = append(line, '\n')
	if s.curSize > 0 && s.curSize+int64(len(line)) > s.opts.MaxFileBytes {
		if err := s.rotate(); err != nil {
			s.setErr(err)
			return
		}
	}
	// One Write call per line: a torn write can only damage this line, never
	// reach back into previously written events.
	n, err := s.cur.Write(line)
	s.curSize += int64(n)
	if err != nil {
		s.setErr(err)
		return
	}
	s.written.Add(1)
}

// rotate finishes the current file — sync to stable storage, then close —
// before opening the next, so every rotated-out file is durable in full.
func (s *Sink) rotate() error {
	if err := s.cur.Sync(); err != nil {
		return err
	}
	if err := s.cur.Close(); err != nil {
		return err
	}
	s.rotations.Add(1)
	return s.openNext()
}

func (s *Sink) setErr(err error) { s.lastErr.Store(&err) }

// Err returns the most recent write-path error (nil when healthy). The sink
// keeps accepting events after an error — a transiently full disk should
// not end capture for the process's lifetime.
func (s *Sink) Err() error {
	if s == nil {
		return nil
	}
	if p := s.lastErr.Load(); p != nil {
		return *p
	}
	return nil
}

// Stats snapshots the sink's counters. Nil-safe.
func (s *Sink) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	return Stats{
		Written:    s.written.Load(),
		Dropped:    s.dropped.Load(),
		SampledOut: s.sampledOut.Load(),
		Rotations:  s.rotations.Load(),
	}
}

// Close drains the queue, syncs the final file, and closes it. Record calls
// racing Close may panic on the closed channel; stop producing first (the
// serving shutdown sequence stops the listener before closing the sink).
func (s *Sink) Close() error {
	if s == nil {
		return nil
	}
	s.once.Do(func() { close(s.ch) })
	<-s.done
	return s.Err()
}
