package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"
)

// FlightRecorder retains the traces of recently completed queries so an
// operator can ask "what did the last slow query actually do?" without
// reproducing it offline. Two retention classes ride in fixed-size rings:
//
//   - recent: every completed query, newest overwriting oldest — the
//     short-horizon picture of current traffic.
//   - slow: queries above the latency threshold, errored, or canceled —
//     retained on their own ring so a burst of fast queries cannot flush
//     the interesting ones.
//
// Memory is bounded by construction: each ring holds at most its configured
// record count, records are immutable snapshots detached from all query
// scratch state, and an overwritten record is reclaimed by the garbage
// collector once the last reader of a snapshot drops it. Recording is
// lock-free (one atomic counter increment plus one atomic pointer store per
// ring) so the serving hot path never queues behind a reader; readers take
// point-in-time snapshots via atomic loads and may observe a record at most
// once shifted during a concurrent wrap, never a torn one.
type FlightRecorder struct {
	recent    ring
	slow      ring
	slowAfter time.Duration
}

type ring struct {
	slots []atomic.Pointer[QueryRecord]
	pos   atomic.Uint64
}

func (r *ring) record(q *QueryRecord) {
	i := r.pos.Add(1) - 1
	r.slots[i%uint64(len(r.slots))].Store(q)
}

// snapshot returns the live records newest-first.
func (r *ring) snapshot() []*QueryRecord {
	n := len(r.slots)
	out := make([]*QueryRecord, 0, n)
	pos := r.pos.Load()
	for k := 0; k < n; k++ {
		// Walk backward from the most recently written slot.
		i := (pos + uint64(n) - 1 - uint64(k)) % uint64(n)
		if q := r.slots[i].Load(); q != nil {
			out = append(out, q)
		}
	}
	return out
}

// DefaultSlowAfter is the default latency threshold for the slow ring.
const DefaultSlowAfter = 250 * time.Millisecond

// NewFlightRecorder returns a recorder retaining the last recentN completed
// queries and, separately, the last slowN slow/errored/canceled ones.
// Queries at or above slowAfter are classified slow; slowAfter <= 0 means
// DefaultSlowAfter. Sizes below 1 are raised to 1.
func NewFlightRecorder(recentN, slowN int, slowAfter time.Duration) *FlightRecorder {
	if recentN < 1 {
		recentN = 1
	}
	if slowN < 1 {
		slowN = 1
	}
	if slowAfter <= 0 {
		slowAfter = DefaultSlowAfter
	}
	return &FlightRecorder{
		recent:    ring{slots: make([]atomic.Pointer[QueryRecord], recentN)},
		slow:      ring{slots: make([]atomic.Pointer[QueryRecord], slowN)},
		slowAfter: slowAfter,
	}
}

// SlowAfter returns the slow-classification threshold.
func (f *FlightRecorder) SlowAfter() time.Duration { return f.slowAfter }

// Record files a completed query. It classifies the record (slow when at or
// over the threshold, errored, or server-failed), stores it in the recent
// ring, and additionally in the slow ring when classified. The record must
// not be mutated after this call. Nil-safe: a nil recorder drops the record
// after one branch, mirroring the Recorder contract.
func (f *FlightRecorder) Record(q *QueryRecord) {
	if f == nil || q == nil {
		return
	}
	q.Slow = time.Duration(q.DurNS) >= f.slowAfter || q.Err != "" || q.Status >= 500
	f.recent.record(q)
	if q.Slow {
		f.slow.record(q)
	}
}

// Recent returns the retained recent queries, newest first.
func (f *FlightRecorder) Recent() []*QueryRecord { return f.recent.snapshot() }

// Slow returns the retained slow/errored queries, newest first.
func (f *FlightRecorder) Slow() []*QueryRecord { return f.slow.snapshot() }

// SpanView is a stage span snapshot inside a QueryRecord.
type SpanView struct {
	Stage string `json:"stage"`
	DurNS int64  `json:"dur_ns"`
	Dur   string `json:"dur"`
	Items int64  `json:"items"`
}

// StepView is a plan-step snapshot: the step's labels plus the stage spans
// recorded while it ran.
type StepView struct {
	Variant string `json:"variant"`
	Kind    string `json:"kind"`
	Outcome string `json:"outcome"`
	DurNS   int64  `json:"dur_ns"`
	Dur     string `json:"dur"`
	// Stages and Gap carry a bounded-error adaptive sample step's realized
	// stage count and certified margin; absent for non-staged steps.
	Stages int        `json:"stages,omitempty"`
	Gap    float64    `json:"gap,omitempty"`
	Spans  []SpanView `json:"spans,omitempty"`
}

// QueryRecord is the immutable snapshot of one completed query held by the
// flight recorder. It is fully detached from the query's Trace and scratch
// state, so retaining it pins no arenas or buffers.
type QueryRecord struct {
	TraceID string `json:"trace_id"`
	Op      string `json:"op"`
	Detail  string `json:"detail,omitempty"`
	// Epoch is the index epoch that served the query (0 for local builds and
	// non-serving contexts); Expr the normalized query expression, "" for
	// legacy single-attribute queries. Both render in the JSON and the
	// ?format=text forms alike — the two renderings carry the same fields.
	Epoch  uint64     `json:"epoch"`
	Expr   string     `json:"expr,omitempty"`
	Status int        `json:"status,omitempty"`
	Start  time.Time  `json:"start"`
	DurNS  int64      `json:"dur_ns"`
	Dur    string     `json:"dur"`
	Err    string     `json:"err,omitempty"`
	Slow   bool       `json:"slow"`
	Steps  []StepView `json:"steps,omitempty"`
	Spans  []SpanView `json:"spans,omitempty"`
}

func spanView(s SpanRecord) SpanView {
	return SpanView{
		Stage: s.Stage.String(),
		DurNS: int64(s.Duration),
		Dur:   s.Duration.String(),
		Items: s.Items,
	}
}

// NewQueryRecord snapshots a finished query into an immutable record. The
// trace's stage spans are nested under the plan step whose [SpanStart,
// SpanEnd) range first claims them; spans no step claims (offline stages,
// spans recorded outside the step loop) surface at the top level. tr may be
// nil (the record then carries no trace ID, steps, or spans). A non-nil err
// is rendered into Err; status is the HTTP status for served queries and 0
// elsewhere.
func NewQueryRecord(tr *Trace, op, detail string, status int, start time.Time, d time.Duration, err error) *QueryRecord {
	q := &QueryRecord{
		Op:     op,
		Detail: detail,
		Status: status,
		Start:  start,
		DurNS:  int64(d),
		Dur:    d.String(),
	}
	if err != nil {
		q.Err = err.Error()
	}
	if tr == nil {
		return q
	}
	q.TraceID = tr.ID()
	spans := tr.Spans()
	steps := tr.Steps()
	used := make([]bool, len(spans))
	q.Steps = make([]StepView, 0, len(steps))
	for _, st := range steps {
		sv := StepView{
			Variant: st.Variant,
			Kind:    st.Kind,
			Outcome: st.Outcome,
			DurNS:   int64(st.Duration),
			Dur:     st.Duration.String(),
			Stages:  st.Stages,
			Gap:     st.Gap,
		}
		lo, hi := st.SpanStart, st.SpanEnd
		if lo < 0 {
			lo = 0
		}
		if hi > len(spans) {
			hi = len(spans)
		}
		for i := lo; i < hi; i++ {
			if used[i] {
				continue
			}
			used[i] = true
			sv.Spans = append(sv.Spans, spanView(spans[i]))
		}
		q.Steps = append(q.Steps, sv)
	}
	for i, s := range spans {
		if !used[i] {
			q.Spans = append(q.Spans, spanView(s))
		}
	}
	return q
}

// WriteText renders the record in the human form served by
// /debug/queries?format=text and printed by codquery -trace.
func (q *QueryRecord) WriteText(w io.Writer) {
	flag := ""
	if q.Slow {
		flag = " SLOW"
	}
	fmt.Fprintf(w, "%s %s trace=%s epoch=%d dur=%s", q.Start.Format(time.RFC3339Nano), q.Op, q.TraceID, q.Epoch, q.Dur)
	if q.Expr != "" {
		fmt.Fprintf(w, " expr=%q", q.Expr)
	}
	if q.Detail != "" {
		fmt.Fprintf(w, " %s", q.Detail)
	}
	if q.Status != 0 {
		fmt.Fprintf(w, " status=%d", q.Status)
	}
	if q.Err != "" {
		fmt.Fprintf(w, " err=%q", q.Err)
	}
	fmt.Fprintf(w, "%s\n", flag)
	for _, st := range q.Steps {
		fmt.Fprintf(w, "  step %s/%s outcome=%s dur=%s", st.Variant, st.Kind, st.Outcome, st.Dur)
		if st.Stages > 0 {
			fmt.Fprintf(w, " stages=%d gap=%.4f", st.Stages, st.Gap)
		}
		fmt.Fprintln(w)
		for _, sp := range st.Spans {
			fmt.Fprintf(w, "    span %s dur=%s items=%d\n", sp.Stage, sp.Dur, sp.Items)
		}
	}
	for _, sp := range q.Spans {
		fmt.Fprintf(w, "  span %s dur=%s items=%d\n", sp.Stage, sp.Dur, sp.Items)
	}
}

// ServeHTTP serves the retained queries: JSON by default, a human-readable
// rendering with ?format=text. GET only; other methods get the JSON 405 the
// rest of the serving surface uses.
func (f *FlightRecorder) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusMethodNotAllowed)
		fmt.Fprintf(w, "{\"error\":\"method %s not allowed\"}\n", r.Method)
		return
	}
	recent, slow := f.Recent(), f.Slow()
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "slow threshold: %s\n\nrecent (%d):\n", f.slowAfter, len(recent))
		for _, q := range recent {
			q.WriteText(w)
		}
		fmt.Fprintf(w, "\nslow (%d):\n", len(slow))
		for _, q := range slow {
			q.WriteText(w)
		}
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(struct {
		SlowAfter string         `json:"slow_after"`
		Recent    []*QueryRecord `json:"recent"`
		Slow      []*QueryRecord `json:"slow"`
	}{f.slowAfter.String(), recent, slow})
}
