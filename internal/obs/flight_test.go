package obs

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func record(op string, d time.Duration) *QueryRecord {
	return NewQueryRecord(nil, op, "", 200, time.Unix(0, 0), d, nil)
}

func TestFlightRecorderRetention(t *testing.T) {
	f := NewFlightRecorder(3, 2, 100*time.Millisecond)
	for i := 0; i < 5; i++ {
		f.Record(record(fmt.Sprintf("q%d", i), time.Millisecond))
	}
	recent := f.Recent()
	if len(recent) != 3 {
		t.Fatalf("recent ring holds %d records, want 3", len(recent))
	}
	// Newest first, oldest overwritten.
	for i, wantOp := range []string{"q4", "q3", "q2"} {
		if recent[i].Op != wantOp {
			t.Errorf("recent[%d].Op = %q, want %q", i, recent[i].Op, wantOp)
		}
	}
	if slow := f.Slow(); len(slow) != 0 {
		t.Errorf("fast queries landed in the slow ring: %d records", len(slow))
	}
}

func TestFlightRecorderSlowClassification(t *testing.T) {
	f := NewFlightRecorder(8, 4, 100*time.Millisecond)
	f.Record(record("fast", time.Millisecond))
	f.Record(record("at-threshold", 100*time.Millisecond))
	f.Record(record("over", time.Second))
	errored := NewQueryRecord(nil, "errored", "", 400, time.Unix(0, 0), time.Millisecond, errors.New("boom"))
	f.Record(errored)
	failed := NewQueryRecord(nil, "failed", "", 500, time.Unix(0, 0), time.Millisecond, nil)
	f.Record(failed)

	slow := f.Slow()
	ops := make([]string, len(slow))
	for i, q := range slow {
		ops[i] = q.Op
		if !q.Slow {
			t.Errorf("record %q in slow ring not flagged Slow", q.Op)
		}
	}
	want := []string{"failed", "errored", "over", "at-threshold"}
	if fmt.Sprint(ops) != fmt.Sprint(want) {
		t.Errorf("slow ring = %v, want %v", ops, want)
	}
	if len(f.Recent()) != 5 {
		t.Errorf("recent ring holds %d records, want all 5", len(f.Recent()))
	}
}

// TestFlightRecorderSlowSurvivesFastBurst locks the reason the slow ring
// exists: a flood of fast queries must not flush a retained slow one.
func TestFlightRecorderSlowSurvivesFastBurst(t *testing.T) {
	f := NewFlightRecorder(4, 4, 100*time.Millisecond)
	f.Record(record("the-slow-one", time.Second))
	for i := 0; i < 100; i++ {
		f.Record(record("fast", time.Millisecond))
	}
	slow := f.Slow()
	if len(slow) != 1 || slow[0].Op != "the-slow-one" {
		t.Fatalf("slow query flushed by fast burst; slow ring = %+v", slow)
	}
	for _, q := range f.Recent() {
		if q.Op == "the-slow-one" {
			t.Error("slow query still in the recent ring after 100 overwrites")
		}
	}
}

func TestFlightRecorderNilSafe(t *testing.T) {
	var f *FlightRecorder
	f.Record(record("q", time.Millisecond)) // must not panic
	f2 := NewFlightRecorder(2, 2, 0)
	f2.Record(nil) // must not panic
	if f2.SlowAfter() != DefaultSlowAfter {
		t.Errorf("slowAfter <= 0 defaulted to %v, want %v", f2.SlowAfter(), DefaultSlowAfter)
	}
}

// TestFlightRecorderConcurrent stress-tests the lock-free rings under -race:
// concurrent writers and readers must never tear a record or index out of
// bounds.
func TestFlightRecorderConcurrent(t *testing.T) {
	f := NewFlightRecorder(8, 4, 50*time.Millisecond)
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < 500; i++ {
				d := time.Millisecond
				if i%7 == 0 {
					d = time.Second
				}
				f.Record(record(fmt.Sprintf("w%d-%d", w, i), d))
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, q := range f.Recent() {
					if q.Op == "" {
						t.Error("torn record: empty op")
						return
					}
				}
				_ = f.Slow()
			}
		}()
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	if got := len(f.Recent()); got != 8 {
		t.Errorf("recent ring holds %d records after full stress, want 8", got)
	}
}

func TestNewQueryRecordNestsSpansUnderSteps(t *testing.T) {
	tr := NewTrace()
	tr.EnsureID(SeedTraceID(97))
	r := NewRecorder(nil, tr)

	// Step 1 wraps one stage span; step 2 wraps none; one span is recorded
	// outside any step and must surface at the top level.
	st1 := r.StartStep("codl", "sample")
	r.StartSpan(StageRRSample).EndItems(12)
	st1.End("sampled")
	st2 := r.StartStep("codl", "evaluate")
	st2.End("ok")
	r.StartSpan(StageHimorBuild).End()

	q := NewQueryRecord(tr, "discover", "q=1", 200, time.Now(), time.Millisecond, nil)
	if q.TraceID != SeedTraceID(97) {
		t.Errorf("TraceID = %q, want seed-derived %q", q.TraceID, SeedTraceID(97))
	}
	if len(q.Steps) != 2 {
		t.Fatalf("got %d steps, want 2", len(q.Steps))
	}
	if q.Steps[0].Kind != "sample" || q.Steps[0].Outcome != "sampled" {
		t.Errorf("step 0 = %+v, want kind=sample outcome=sampled", q.Steps[0])
	}
	if len(q.Steps[0].Spans) != 1 || q.Steps[0].Spans[0].Stage != StageRRSample.String() {
		t.Errorf("step 0 spans = %+v, want one %s span", q.Steps[0].Spans, StageRRSample)
	}
	if q.Steps[0].Spans[0].Items != 12 {
		t.Errorf("nested span items = %d, want 12", q.Steps[0].Spans[0].Items)
	}
	if len(q.Steps[1].Spans) != 0 {
		t.Errorf("step 1 claimed %d spans, want 0", len(q.Steps[1].Spans))
	}
	if len(q.Spans) != 1 || q.Spans[0].Stage != StageHimorBuild.String() {
		t.Errorf("top-level spans = %+v, want one unclaimed %s span", q.Spans, StageHimorBuild)
	}
}

func TestNewQueryRecordNilTrace(t *testing.T) {
	q := NewQueryRecord(nil, "op", "", 0, time.Now(), time.Millisecond, nil)
	if q.TraceID != "" || len(q.Steps) != 0 || len(q.Spans) != 0 {
		t.Errorf("nil-trace record carries trace data: %+v", q)
	}
}

func TestFlightServeHTTPJSON(t *testing.T) {
	f := NewFlightRecorder(4, 2, 100*time.Millisecond)
	tr := NewTrace()
	tr.EnsureID(SeedTraceID(7))
	r := NewRecorder(nil, tr)
	st := r.StartStep("codl", "extract")
	st.End("found")
	f.Record(NewQueryRecord(tr, "/discover", "q=3", 200, time.Now(), time.Second, nil))

	rw := httptest.NewRecorder()
	f.ServeHTTP(rw, httptest.NewRequest(http.MethodGet, "/debug/queries", nil))
	if rw.Code != http.StatusOK {
		t.Fatalf("status %d, want 200", rw.Code)
	}
	if ct := rw.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type %q, want application/json", ct)
	}
	var body struct {
		SlowAfter string         `json:"slow_after"`
		Recent    []*QueryRecord `json:"recent"`
		Slow      []*QueryRecord `json:"slow"`
	}
	if err := json.Unmarshal(rw.Body.Bytes(), &body); err != nil {
		t.Fatalf("response is not JSON: %v\n%s", err, rw.Body.String())
	}
	if body.SlowAfter != "100ms" {
		t.Errorf("slow_after = %q, want 100ms", body.SlowAfter)
	}
	if len(body.Recent) != 1 || len(body.Slow) != 1 {
		t.Fatalf("got %d recent / %d slow, want 1/1 (1s query over 100ms threshold)",
			len(body.Recent), len(body.Slow))
	}
	got := body.Recent[0]
	if got.TraceID != SeedTraceID(7) || !got.Slow || len(got.Steps) != 1 {
		t.Errorf("record = %+v, want trace %s, slow, one step", got, SeedTraceID(7))
	}
	if got.Steps[0].Outcome != "found" {
		t.Errorf("step outcome = %q, want found", got.Steps[0].Outcome)
	}
}

func TestFlightServeHTTPText(t *testing.T) {
	f := NewFlightRecorder(4, 2, 100*time.Millisecond)
	tr := NewTrace()
	tr.EnsureID(SeedTraceID(7))
	r := NewRecorder(nil, tr)
	st := r.StartStep("codl", "weight")
	st.End("lore")
	qr := NewQueryRecord(tr, "/discover", "q=3", 200, time.Now(), time.Second, nil)
	qr.Epoch = 5
	qr.Expr = "lang and node=3"
	f.Record(qr)

	rw := httptest.NewRecorder()
	f.ServeHTTP(rw, httptest.NewRequest(http.MethodGet, "/debug/queries?format=text", nil))
	if rw.Code != http.StatusOK {
		t.Fatalf("status %d, want 200", rw.Code)
	}
	if ct := rw.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type %q, want text/plain", ct)
	}
	out := rw.Body.String()
	for _, want := range []string{
		"slow threshold: 100ms",
		"trace=" + SeedTraceID(7),
		"epoch=5",
		`expr="lang and node=3"`,
		"step codl/weight outcome=lore",
		" SLOW",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
}

func TestFlightServeHTTPMethodNotAllowed(t *testing.T) {
	f := NewFlightRecorder(2, 2, 0)
	rw := httptest.NewRecorder()
	f.ServeHTTP(rw, httptest.NewRequest(http.MethodPost, "/debug/queries", nil))
	if rw.Code != http.StatusMethodNotAllowed {
		t.Fatalf("status %d, want 405", rw.Code)
	}
	if rw.Header().Get("Allow") != http.MethodGet {
		t.Errorf("Allow = %q, want GET", rw.Header().Get("Allow"))
	}
	if ct := rw.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type %q, want application/json", ct)
	}
}

// TestNilRecorderNoAllocs locks the standing contract: the nil-Recorder
// fast path of every per-query hook costs one branch, never an allocation.
func TestNilRecorderNoAllocs(t *testing.T) {
	var r *Recorder
	if n := testing.AllocsPerRun(100, func() {
		sp := r.StartSpan(StageRRSample)
		sp.EndItems(3)
		st := r.StartStep("codl", "sample")
		st.End("sampled")
		r.EnsureTraceID(97)
		r.CountQuery(nil)
		r.CountIndexHit()
	}); n != 0 {
		t.Errorf("nil-Recorder instrumentation allocates %.1f times per query, want 0", n)
	}
	// A metrics-only recorder (no trace) must not allocate per step either:
	// StartStep is trace-only and returns the zero StepSpan.
	mr := NewRecorder(NewQueryMetrics(NewRegistry()), nil)
	if n := testing.AllocsPerRun(100, func() {
		st := mr.StartStep("codl", "sample")
		st.End("sampled")
	}); n != 0 {
		t.Errorf("metrics-only StartStep allocates %.1f times, want 0", n)
	}
}

// BenchmarkNilRecorderStep is the benchmark form of the contract above: the
// per-step overhead with no recorder attached. Run with -benchmem; the
// report must show 0 allocs/op.
func BenchmarkNilRecorderStep(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := r.StartStep("codl", "sample")
		sp.End("sampled")
	}
}

func BenchmarkFlightRecord(b *testing.B) {
	f := NewFlightRecorder(128, 32, DefaultSlowAfter)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Record(&QueryRecord{Op: "/discover", DurNS: int64(time.Millisecond)})
	}
}
