package obs

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func scrape(t *testing.T, reg *Registry) string {
	t.Helper()
	rw := httptest.NewRecorder()
	reg.ServeHTTP(rw, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rw.Code != http.StatusOK {
		t.Fatalf("scrape status %d", rw.Code)
	}
	return rw.Body.String()
}

func TestGaugeFuncSampledAtScrape(t *testing.T) {
	reg := NewRegistry()
	v := int64(3)
	reg.GaugeFunc("cod_test_occupancy", "test occupancy", func() int64 { return v })
	if out := scrape(t, reg); !strings.Contains(out, "cod_test_occupancy 3") {
		t.Errorf("scrape missing sampled value 3:\n%s", out)
	}
	v = 17
	if out := scrape(t, reg); !strings.Contains(out, "cod_test_occupancy 17") {
		t.Errorf("gauge func not re-sampled at scrape:\n%s", out)
	}
}

// TestGaugeFuncReRegisterRepoints locks the last-writer-wins contract:
// codserve registers its engine gauges before the searcher exists and
// re-points them when it is swapped in; the scrape must follow the newest
// function.
func TestGaugeFuncReRegisterRepoints(t *testing.T) {
	reg := NewRegistry()
	reg.GaugeFunc("cod_test_swap", "swap", func() int64 { return 1 })
	reg.GaugeFunc("cod_test_swap", "swap", func() int64 { return 2 })
	if out := scrape(t, reg); !strings.Contains(out, "cod_test_swap 2") {
		t.Errorf("re-registered gauge func not used:\n%s", out)
	}
}

func TestGaugeFuncNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("GaugeFunc(nil) did not panic")
		}
	}()
	NewRegistry().GaugeFunc("cod_test_nil", "nil", nil)
}

func TestRegisterRuntimeMetrics(t *testing.T) {
	reg := NewRegistry()
	RegisterRuntimeMetrics(reg)
	out := scrape(t, reg)
	for _, name := range []string{
		"go_goroutines",
		"go_heap_alloc_bytes",
		"go_heap_inuse_bytes",
		"go_heap_objects",
		"go_sys_bytes",
		"go_gc_cycles_total",
		"go_next_gc_bytes",
		"go_gc_pause_total_ns",
	} {
		if !strings.Contains(out, "# TYPE "+name+" gauge") {
			t.Errorf("scrape missing runtime gauge %s", name)
		}
	}
	// Sanity: a live process has goroutines and a heap.
	for _, want := range []string{"go_goroutines ", "go_sys_bytes "} {
		idx := strings.Index(out, want)
		if idx < 0 {
			t.Fatalf("missing %q line", want)
		}
		line := out[idx:]
		if nl := strings.IndexByte(line, '\n'); nl >= 0 {
			line = line[:nl]
		}
		val := strings.TrimSpace(strings.TrimPrefix(line, want))
		if val == "0" || val == "" {
			t.Errorf("%s reports %q, want a positive value", strings.TrimSpace(want), val)
		}
	}
}
