// Package obs is the observability substrate of the COD serving stack: a
// stdlib-only metrics registry (atomic counters, gauges and fixed-bucket
// latency histograms, all allocation-free on the hot path and safe under the
// race detector), a per-query Trace of stage spans, and a nil-safe Recorder
// that the query pipelines consult through the request context.
//
// The contract that makes instrumentation safe to leave on everywhere:
// recording never draws randomness and never branches on measured values, so
// an instrumented run is byte-identical to an uninstrumented one (locked in
// the determinism-replay suite). Metric names carry no labels; everything
// that would be a label (the stage, the status class) is part of the name,
// per DESIGN.md §11.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter. The zero value is ready to
// use; all methods are safe for concurrent use.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the exported value to stay monotone).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an integer gauge (a value that may go up and down). The zero
// value is ready to use; all methods are safe for concurrent use.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n (negative n decrements).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefaultLatencyBuckets are the fixed histogram bounds (seconds) used for
// every stage-latency histogram: 100µs to 10s, roughly one bucket per
// half-decade. Queries below 100µs land in the first bucket; anything above
// 10s lands in +Inf.
var DefaultLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket histogram with Prometheus semantics: an
// observation v lands in the first bucket whose upper bound satisfies
// v <= le (bounds are inclusive), or the implicit +Inf bucket. Observe is
// allocation-free and safe for concurrent use.
type Histogram struct {
	bounds []float64      // sorted upper bounds, +Inf excluded
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	sum    atomic.Uint64  // float64 bits of the running sum
	count  atomic.Int64
}

// NewHistogram returns a histogram over the given upper bounds (which must
// be sorted ascending and non-empty). The bounds slice is copied.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not strictly ascending at %d", i))
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nv) {
			return
		}
	}
}

// ObserveDuration records d as seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// BucketCount returns the non-cumulative count of bucket i (the +Inf bucket
// is index len(bounds)); exposed for tests.
func (h *Histogram) BucketCount(i int) int64 { return h.counts[i].Load() }

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindGaugeFunc
	kindCollector
)

type metricEntry struct {
	name, help string
	kind       metricKind
	c          *Counter
	g          *Gauge
	h          *Histogram
	gf         func() int64
	col        func(io.Writer) error
}

// Registry holds named metrics and renders them in the Prometheus text
// exposition format. Registration takes a lock; reads and writes of the
// registered metrics themselves are lock-free.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*metricEntry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{entries: map[string]*metricEntry{}} }

func (r *Registry) register(name, help string, kind metricKind) *metricEntry {
	if !validMetricName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[name]; ok {
		if e.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different kind", name))
		}
		return e
	}
	e := &metricEntry{name: name, help: help, kind: kind}
	r.entries[name] = e
	return e
}

// Counter returns the counter registered under name, creating it on first
// use. Re-registering an existing name returns the same counter; reusing a
// name for a different metric kind panics (a wiring bug, not a runtime
// condition).
func (r *Registry) Counter(name, help string) *Counter {
	e := r.register(name, help, kindCounter)
	if e.c == nil {
		e.c = &Counter{}
	}
	return e.c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	e := r.register(name, help, kindGauge)
	if e.g == nil {
		e.g = &Gauge{}
	}
	return e.g
}

// GaugeFunc registers a gauge whose value is sampled by calling fn at
// scrape time — for values that already live somewhere (goroutine counts,
// pool occupancy) and would go stale or cost double bookkeeping as a stored
// Gauge. fn must be safe for concurrent use and should be cheap; it runs
// under no registry lock. Re-registering an existing name replaces fn (last
// writer wins), which lets a serving process re-point occupancy gauges when
// its engine is swapped.
func (r *Registry) GaugeFunc(name, help string, fn func() int64) {
	if fn == nil {
		panic("obs: GaugeFunc needs a non-nil fn")
	}
	e := r.register(name, help, kindGaugeFunc)
	r.mu.Lock()
	e.gf = fn
	r.mu.Unlock()
}

// Collector registers a raw exposition block rendered under name at scrape
// time: fn writes complete Prometheus text lines (its own # TYPE included)
// for series the fixed metric kinds cannot express — labeled families,
// exemplar comments. The block sorts among the other metrics by name, so
// output stays stable. fn must be safe for concurrent use; re-registering
// replaces fn (last writer wins), mirroring GaugeFunc.
func (r *Registry) Collector(name string, fn func(io.Writer) error) {
	if fn == nil {
		panic("obs: Collector needs a non-nil fn")
	}
	e := r.register(name, "", kindCollector)
	r.mu.Lock()
	e.col = fn
	r.mu.Unlock()
}

// Histogram returns the histogram registered under name, creating it with
// the given bounds on first use (later calls ignore bounds).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	e := r.register(name, help, kindHistogram)
	if e.h == nil {
		e.h = NewHistogram(bounds)
	}
	return e.h
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4), sorted by name so output is stable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.entries))
	for name := range r.entries {
		names = append(names, name)
	}
	entries := make([]*metricEntry, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		entries = append(entries, r.entries[name])
	}
	// Snapshot the sampler funcs under the lock: GaugeFunc/Collector may
	// replace one concurrently, and e.gf/e.col must not be read
	// unsynchronized after unlock.
	funcs := make([]func() int64, len(entries))
	cols := make([]func(io.Writer) error, len(entries))
	for i, e := range entries {
		funcs[i] = e.gf
		cols[i] = e.col
	}
	r.mu.Unlock()

	for i, e := range entries {
		if e.kind == kindCollector {
			if err := cols[i](w); err != nil {
				return err
			}
			continue
		}
		if e.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", e.name, e.help); err != nil {
				return err
			}
		}
		var err error
		switch e.kind {
		case kindCounter:
			_, err = fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", e.name, e.name, e.c.Value())
		case kindGauge:
			_, err = fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", e.name, e.name, e.g.Value())
		case kindGaugeFunc:
			_, err = fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", e.name, e.name, funcs[i]())
		case kindHistogram:
			err = writeHistogram(w, e.name, e.h)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func writeHistogram(w io.Writer, name string, h *Histogram) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
		return err
	}
	var cum int64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatBound(b), cum); err != nil {
			return err
		}
	}
	cum += h.counts[len(h.bounds)].Load()
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %s\n", name, formatBound(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count %d\n", name, h.Count())
	return err
}

func formatBound(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// ServeHTTP implements http.Handler, rendering the registry as
// text/plain; version=0.0.4 (the Prometheus text format content type).
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = r.WritePrometheus(w)
}

func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
