package obs

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Errorf("gauge = %d, want 7", got)
	}
}

// TestConcurrentIncrements is the -race stress: many goroutines hammer the
// same counter, gauge and histogram; totals must be exact.
func TestConcurrentIncrements(t *testing.T) {
	const workers = 16
	const perWorker = 2000
	var c Counter
	var g Gauge
	h := NewHistogram([]float64{0.5, 1.5})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(w % 3)) // buckets 0.5, 1.5, +Inf all hit
			}
		}(w)
	}
	wg.Wait()
	want := int64(workers * perWorker)
	if got := c.Value(); got != want {
		t.Errorf("counter = %d, want %d", got, want)
	}
	if got := g.Value(); got != want {
		t.Errorf("gauge = %d, want %d", got, want)
	}
	if got := h.Count(); got != want {
		t.Errorf("histogram count = %d, want %d", got, want)
	}
	var bucketTotal int64
	for i := 0; i <= 2; i++ {
		bucketTotal += h.BucketCount(i)
	}
	if bucketTotal != want {
		t.Errorf("bucket total = %d, want %d", bucketTotal, want)
	}
	// The CAS float sum must not lose updates: every observation added an
	// integer, so the float sum is exact.
	var wantSum float64
	for w := 0; w < workers; w++ {
		wantSum += float64(w%3) * perWorker
	}
	if got := h.Sum(); got != wantSum {
		t.Errorf("histogram sum = %v, want %v", got, wantSum)
	}
}

// TestHistogramBucketBoundaries locks in the le-inclusive Prometheus bucket
// semantics: v lands in the first bucket with v <= bound.
func TestHistogramBucketBoundaries(t *testing.T) {
	bounds := []float64{0.001, 0.01, 0.1, 1}
	cases := []struct {
		v      float64
		bucket int
	}{
		{0, 0},
		{0.0005, 0},
		{0.001, 0}, // exactly on a bound: inclusive
		{0.0010001, 1},
		{0.01, 1},
		{0.05, 2},
		{0.1, 2},
		{0.5, 3},
		{1, 3},
		{1.0001, 4}, // +Inf bucket
		{100, 4},
		{math.Inf(1), 4},
	}
	for _, tc := range cases {
		h := NewHistogram(bounds)
		h.Observe(tc.v)
		for i := 0; i <= len(bounds); i++ {
			want := int64(0)
			if i == tc.bucket {
				want = 1
			}
			if got := h.BucketCount(i); got != want {
				t.Errorf("Observe(%v): bucket[%d] = %d, want %d", tc.v, i, got, want)
			}
		}
		if got := h.Count(); got != 1 {
			t.Errorf("Observe(%v): count = %d, want 1", tc.v, got)
		}
	}
}

func TestHistogramObserveDuration(t *testing.T) {
	h := NewHistogram(DefaultLatencyBuckets)
	h.ObserveDuration(2 * time.Millisecond)
	// 0.002s lands in the 0.0025 bucket (index 4 of the default bounds).
	if got := h.BucketCount(4); got != 1 {
		t.Errorf("2ms bucket = %d, want 1", got)
	}
	if got := h.Sum(); math.Abs(got-0.002) > 1e-12 {
		t.Errorf("sum = %v, want 0.002", got)
	}
}

func TestNewHistogramPanics(t *testing.T) {
	for name, bounds := range map[string][]float64{
		"empty":      {},
		"descending": {1, 0.5},
		"duplicate":  {1, 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: NewHistogram(%v) did not panic", name, bounds)
				}
			}()
			NewHistogram(bounds)
		}()
	}
}

func TestRegistryIdempotentAndKindClash(t *testing.T) {
	reg := NewRegistry()
	c1 := reg.Counter("x_total", "help")
	c2 := reg.Counter("x_total", "other help")
	if c1 != c2 {
		t.Error("re-registering a counter returned a different instance")
	}
	h1 := reg.Histogram("y_seconds", "h", DefaultLatencyBuckets)
	h2 := reg.Histogram("y_seconds", "h", []float64{1}) // bounds ignored on reuse
	if h1 != h2 {
		t.Error("re-registering a histogram returned a different instance")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("kind clash did not panic")
			}
		}()
		reg.Gauge("x_total", "now a gauge")
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("invalid name did not panic")
			}
		}()
		reg.Counter("9starts_with_digit", "")
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("name with space did not panic")
			}
		}()
		reg.Counter("has space", "")
	}()
}

func TestWritePrometheusFormat(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("b_total", "a counter").Add(3)
	reg.Gauge("a_gauge", "a gauge").Set(-2)
	h := reg.Histogram("c_seconds", "a histogram", []float64{0.5, 1})
	h.Observe(0.25)
	h.Observe(0.75)
	h.Observe(2)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := `# HELP a_gauge a gauge
# TYPE a_gauge gauge
a_gauge -2
# HELP b_total a counter
# TYPE b_total counter
b_total 3
# HELP c_seconds a histogram
# TYPE c_seconds histogram
c_seconds_bucket{le="0.5"} 1
c_seconds_bucket{le="1"} 2
c_seconds_bucket{le="+Inf"} 3
c_seconds_sum 3
c_seconds_count 3
`
	if got != want {
		t.Errorf("WritePrometheus output:\n%s\nwant:\n%s", got, want)
	}
}

func TestRegistryServeHTTP(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("hits_total", "hits").Inc()
	rr := httptest.NewRecorder()
	reg.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rr.Header().Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("Content-Type = %q", ct)
	}
	if !strings.Contains(rr.Body.String(), "hits_total 1") {
		t.Errorf("body missing counter:\n%s", rr.Body.String())
	}
}
