package obs

import (
	"context"
	"errors"
	"time"
)

// QueryMetrics bundles the pipeline-facing metrics, pre-resolved at wiring
// time so the hot path never touches the registry's lock or a map. One
// QueryMetrics is shared by every query of a process.
type QueryMetrics struct {
	// Queries counts every query the pipelines answered (ok or not).
	Queries *Counter
	// QueryErrors counts queries that failed for a non-cancellation reason.
	QueryErrors *Counter
	// QueriesCanceled counts queries stopped by context cancellation or
	// deadline expiry.
	QueriesCanceled *Counter
	// IndexHits counts CODL queries answered directly from the HIMOR index.
	IndexHits *Counter
	// CacheHits counts shared-pool sample requests served from the engine's
	// per-attribute RR sample cache.
	CacheHits *Counter
	// CacheMisses counts shared-pool sample requests that had to sample a
	// fresh pool (cache disabled requests count neither way).
	CacheMisses *Counter
	// CacheEvictions counts sample pools dropped to respect the cache bound.
	CacheEvictions *Counter
	// AdaptiveEarlyStops counts staged sample steps whose rank-k decision
	// was certified before the full budget (outcome early_stop).
	AdaptiveEarlyStops *Counter
	// AdaptiveStages is the distribution of realized stage counts of staged
	// sample steps (1 = decided on the first geometric stage).
	AdaptiveStages *Histogram
	// AdaptiveSamplesUsed counts the RR samples staged evaluations actually
	// consumed; AdaptiveSamplesBudget the full budgets those evaluations
	// were allowed. Their ratio is the realized budget fraction reported by
	// the cod_adaptive_realized_budget_percent gauge.
	AdaptiveSamplesUsed   *Counter
	AdaptiveSamplesBudget *Counter

	stageSeconds [NumStages]*Histogram
	stageItems   [NumStages]*Counter
}

// adaptiveStageBuckets bounds the cod_adaptive_stage histogram: stage
// counts are tiny integers (the default schedule has 4 stages).
var adaptiveStageBuckets = []float64{1, 2, 3, 4, 5, 6, 7, 8}

// NewQueryMetrics registers the pipeline metrics in reg (idempotently) and
// returns the pre-resolved bundle.
func NewQueryMetrics(reg *Registry) *QueryMetrics {
	m := &QueryMetrics{
		Queries:         reg.Counter("cod_queries_total", "COD queries answered by the pipelines."),
		QueryErrors:     reg.Counter("cod_query_errors_total", "Queries failed for a non-cancellation reason."),
		QueriesCanceled: reg.Counter("cod_queries_canceled_total", "Queries stopped by cancellation or deadline."),
		IndexHits:       reg.Counter("cod_himor_index_hits_total", "CODL queries answered directly from the HIMOR index."),
		CacheHits:       reg.Counter("cod_rr_cache_hits_total", "Shared-pool sample requests served from the RR sample cache."),
		CacheMisses:     reg.Counter("cod_rr_cache_misses_total", "Shared-pool sample requests that sampled a fresh pool."),
		CacheEvictions:  reg.Counter("cod_rr_cache_evictions_total", "RR sample pools evicted to respect the cache bound."),
		AdaptiveEarlyStops: reg.Counter("cod_adaptive_early_stop_total",
			"Staged sample steps certified before exhausting the sample budget."),
		AdaptiveStages: reg.Histogram("cod_adaptive_stage",
			"Realized stage count of staged (bounded-error) sample steps.", adaptiveStageBuckets),
		AdaptiveSamplesUsed: reg.Counter("cod_adaptive_samples_used_total",
			"RR samples consumed by staged evaluations."),
		AdaptiveSamplesBudget: reg.Counter("cod_adaptive_samples_budget_total",
			"Full RR sample budgets of staged evaluations."),
	}
	reg.GaugeFunc("cod_adaptive_realized_budget_percent",
		"Percent of the full RR sample budget staged evaluations consumed (cumulative).",
		func() int64 {
			b := m.AdaptiveSamplesBudget.Value()
			if b == 0 {
				return 0
			}
			return 100 * m.AdaptiveSamplesUsed.Value() / b
		})
	for s := Stage(0); s < NumStages; s++ {
		m.stageSeconds[s] = reg.Histogram(
			"cod_stage_"+s.String()+"_seconds",
			"Wall-clock seconds spent in the "+s.String()+" stage.",
			DefaultLatencyBuckets)
		m.stageItems[s] = reg.Counter(
			"cod_stage_"+s.String()+"_items_total",
			"Units processed by the "+s.String()+" stage (samples, entries, merges, vertices).")
	}
	return m
}

// StageSeconds returns the latency histogram of a stage.
func (m *QueryMetrics) StageSeconds(s Stage) *Histogram { return m.stageSeconds[s] }

// StageItems returns the item counter of a stage.
func (m *QueryMetrics) StageItems(s Stage) *Counter { return m.stageItems[s] }

// Recorder is the nil-safe instrumentation hook the pipelines carry through
// the request context. A nil *Recorder is fully valid: every method returns
// after one branch, so uninstrumented calls cost nothing measurable and the
// pipelines never need to know whether observability is wired in. A Recorder
// may carry process metrics, a per-query trace, or both.
type Recorder struct {
	m *QueryMetrics
	t *Trace
}

// NewRecorder combines process metrics and a per-query trace; either may be
// nil. When both are nil the Recorder itself is nil, keeping the nil fast
// path for fully uninstrumented callers.
func NewRecorder(m *QueryMetrics, t *Trace) *Recorder {
	if m == nil && t == nil {
		return nil
	}
	return &Recorder{m: m, t: t}
}

// Metrics returns the process metrics bundle (nil when absent).
func (r *Recorder) Metrics() *QueryMetrics {
	if r == nil {
		return nil
	}
	return r.m
}

// Trace returns the per-query trace (nil when absent).
func (r *Recorder) Trace() *Trace {
	if r == nil {
		return nil
	}
	return r.t
}

// Span is an in-flight stage measurement started by StartSpan. The zero Span
// (from a nil Recorder) is valid and End/EndItems on it are no-ops.
type Span struct {
	r     *Recorder
	stage Stage
	start time.Time
}

// StartSpan begins timing a stage. On a nil Recorder it returns the zero
// Span without reading the clock.
func (r *Recorder) StartSpan(stage Stage) Span {
	if r == nil {
		return Span{}
	}
	return Span{r: r, stage: stage, start: time.Now()}
}

// End completes the span with no item count.
func (s Span) End() { s.EndItems(0) }

// EndItems completes the span, recording its duration into the stage
// histogram, items into the stage counter, and the pair into the trace.
// Cancellation paths call it with the partial item count, so canceled
// queries still flush what they completed.
func (s Span) EndItems(items int) {
	if s.r == nil {
		return
	}
	d := time.Since(s.start)
	if m := s.r.m; m != nil {
		m.stageSeconds[s.stage].ObserveDuration(d)
		m.stageItems[s.stage].Add(int64(items))
	}
	if t := s.r.t; t != nil {
		t.add(SpanRecord{Stage: s.stage, Duration: d, Items: int64(items)})
	}
}

// StepSpan is an in-flight plan-step measurement started by StartStep. The
// zero StepSpan (from a nil Recorder or a metrics-only one) is valid and
// End on it is a no-op.
type StepSpan struct {
	r         *Recorder
	variant   string
	kind      string
	spanStart int
	start     time.Time
}

// StartStep begins timing one plan step. Step spans are trace-only (step
// latency histograms would multiply the metric surface by variant × kind;
// the stage histograms already cover aggregate cost), so a Recorder without
// a trace returns the zero StepSpan without reading the clock — the
// metrics-only serving background path stays untouched.
func (r *Recorder) StartStep(variant, kind string) StepSpan {
	if r == nil || r.t == nil {
		return StepSpan{}
	}
	return StepSpan{r: r, variant: variant, kind: kind, spanStart: r.t.Len(), start: time.Now()}
}

// End completes the step with its outcome, recording the step and the index
// range of stage spans the trace gained while it ran.
func (s StepSpan) End(outcome string) { s.EndStaged(outcome, 0, 0) }

// EndStaged is End carrying a staged sample step's realized stage count and
// certified gap; stages 0 records a plain (non-staged) step.
func (s StepSpan) EndStaged(outcome string, stages int, gap float64) {
	if s.r == nil {
		return
	}
	d := time.Since(s.start)
	t := s.r.t
	t.addStep(StepRecord{
		Variant:   s.variant,
		Kind:      s.kind,
		Outcome:   outcome,
		Duration:  d,
		SpanStart: s.spanStart,
		SpanEnd:   t.Len(),
		Stages:    stages,
		Gap:       gap,
	})
}

// EnsureTraceID assigns the trace a deterministic ID derived from the
// query's seed, unless a front end already installed one (e.g. from a W3C
// traceparent header). Derivation is a pure function of the seed — no
// randomness is drawn and nothing downstream branches on the ID, so the
// byte-identity contract holds.
func (r *Recorder) EnsureTraceID(seed uint64) {
	if r == nil || r.t == nil {
		return
	}
	r.t.SetSeed(seed)
	r.t.EnsureID(SeedTraceID(seed))
}

// TraceID returns the trace's ID, or "" without a trace.
func (r *Recorder) TraceID() string {
	if r == nil || r.t == nil {
		return ""
	}
	return r.t.ID()
}

// AddItems counts stage units outside a span (e.g. samples completed by a
// loop whose timing is recorded elsewhere).
func (r *Recorder) AddItems(stage Stage, n int) {
	if r == nil || r.m == nil {
		return
	}
	r.m.stageItems[stage].Add(int64(n))
}

// CountQuery classifies one finished query into the query counters:
// canceled (context error anywhere in the chain), errored, or answered.
func (r *Recorder) CountQuery(err error) {
	if r == nil || r.m == nil {
		return
	}
	r.m.Queries.Inc()
	switch {
	case err == nil:
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		r.m.QueriesCanceled.Inc()
	default:
		r.m.QueryErrors.Inc()
	}
}

// CountIndexHit records a CODL query answered straight from the HIMOR index.
func (r *Recorder) CountIndexHit() {
	if r == nil || r.m == nil {
		return
	}
	r.m.IndexHits.Inc()
}

// CountAdaptive records one finished staged evaluation: the 1-based stage
// its decision landed on, the RR samples it consumed, and the full budget it
// was allowed. earlyStop marks a certified stop before the final stage.
func (r *Recorder) CountAdaptive(earlyStop bool, stage int, used, budget int64) {
	if r == nil || r.m == nil {
		return
	}
	if earlyStop {
		r.m.AdaptiveEarlyStops.Inc()
	}
	r.m.AdaptiveStages.Observe(float64(stage))
	r.m.AdaptiveSamplesUsed.Add(used)
	r.m.AdaptiveSamplesBudget.Add(budget)
}

// CountCacheHit records a shared-pool request served from the sample cache.
func (r *Recorder) CountCacheHit() {
	if r == nil || r.m == nil {
		return
	}
	r.m.CacheHits.Inc()
}

// CountCacheMiss records a shared-pool request that sampled a fresh pool.
func (r *Recorder) CountCacheMiss() {
	if r == nil || r.m == nil {
		return
	}
	r.m.CacheMisses.Inc()
}

// CountCacheEviction records one sample pool evicted from the cache.
func (r *Recorder) CountCacheEviction() {
	if r == nil || r.m == nil {
		return
	}
	r.m.CacheEvictions.Inc()
}

type recorderKey struct{}

// WithRecorder attaches r to the context; a nil Recorder returns ctx
// unchanged.
func WithRecorder(ctx context.Context, r *Recorder) context.Context {
	if r == nil {
		return ctx
	}
	return context.WithValue(ctx, recorderKey{}, r)
}

// FromContext extracts the Recorder attached by WithRecorder, or nil. All
// pipeline instrumentation flows through this: a context without a Recorder
// yields nil, and every Recorder method is a one-branch no-op on nil.
func FromContext(ctx context.Context) *Recorder {
	r, _ := ctx.Value(recorderKey{}).(*Recorder)
	return r
}
