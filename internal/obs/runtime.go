package obs

import (
	"runtime"
	"sync"
	"time"
)

// Runtime gauges: goroutine count and heap/GC statistics, sampled lazily at
// scrape time through GaugeFunc. runtime.ReadMemStats stops the world, so
// one scrape reading eight gauges must not pay it eight times — a shared
// memStatsSampler caches the last snapshot briefly (well under any sane
// scrape interval) and every gauge reads from the cache.

// memStatsTTL bounds how stale a scraped memstats snapshot can be. One
// scrape's worth of gauges always shares a single ReadMemStats.
const memStatsTTL = 500 * time.Millisecond

type memStatsSampler struct {
	mu   sync.Mutex
	at   time.Time
	stat runtime.MemStats
}

func (s *memStatsSampler) sample() runtime.MemStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	if now := time.Now(); s.at.IsZero() || now.Sub(s.at) > memStatsTTL {
		runtime.ReadMemStats(&s.stat)
		s.at = now
	}
	return s.stat
}

// RegisterRuntimeMetrics registers Go runtime gauges (goroutines, heap
// occupancy, GC activity) on reg. Heap and GC gauges share one cached
// memstats snapshot per scrape; go_goroutines is read directly (cheap).
// Idempotent in effect: re-registering replaces the samplers.
func RegisterRuntimeMetrics(reg *Registry) {
	ms := &memStatsSampler{}
	reg.GaugeFunc("go_goroutines", "Goroutines that currently exist.",
		func() int64 { return int64(runtime.NumGoroutine()) })
	reg.GaugeFunc("go_heap_alloc_bytes", "Bytes of allocated heap objects.",
		func() int64 { return int64(ms.sample().HeapAlloc) })
	reg.GaugeFunc("go_heap_inuse_bytes", "Bytes in in-use heap spans.",
		func() int64 { return int64(ms.sample().HeapInuse) })
	reg.GaugeFunc("go_heap_objects", "Number of allocated heap objects.",
		func() int64 { return int64(ms.sample().HeapObjects) })
	reg.GaugeFunc("go_sys_bytes", "Bytes obtained from the OS.",
		func() int64 { return int64(ms.sample().Sys) })
	reg.GaugeFunc("go_gc_cycles_total", "Completed GC cycles.",
		func() int64 { return int64(ms.sample().NumGC) })
	reg.GaugeFunc("go_next_gc_bytes", "Heap size target of the next GC cycle.",
		func() int64 { return int64(ms.sample().NextGC) })
	reg.GaugeFunc("go_gc_pause_total_ns", "Cumulative stop-the-world GC pause nanoseconds.",
		func() int64 { return int64(ms.sample().PauseTotalNs) })
}
