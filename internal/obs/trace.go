package obs

import (
	"strconv"
	"strings"
	"sync"
	"time"
)

// Stage identifies one instrumented phase of a COD query or offline build.
// Stages are a closed enum so per-stage metrics can live in fixed arrays
// (no map lookups on the hot path) and metric names stay label-free.
type Stage int

// The instrumented stages, in rough pipeline order.
const (
	// StageHACMerge is the agglomerative merge loop (offline clustering and
	// LORE/CODR reclustering alike).
	StageHACMerge Stage = iota
	// StageLoreScore is LORE's reclustering-score sweep over H(q).
	StageLoreScore
	// StageRRSample is RR-graph sampling: shared batches, parallel offline
	// pools, and the restricted per-query loop.
	StageRRSample
	// StageRRInduce is the HFS pass inducing RR graphs into chain buckets
	// (stage 1 of the compressed evaluation).
	StageRRInduce
	// StageTopKSweep is the incremental top-k sweep over the buckets
	// (stage 2 of the compressed evaluation).
	StageTopKSweep
	// StageHimorLookup is the top-down HIMOR index scan of a CODL query.
	StageHimorLookup
	// StageHimorBuild is the offline HIMOR index construction.
	StageHimorBuild
	// NumStages bounds the enum; it is not a stage.
	NumStages
)

var stageNames = [NumStages]string{
	StageHACMerge:    "hac_merge",
	StageLoreScore:   "lore_score",
	StageRRSample:    "rr_sample",
	StageRRInduce:    "rr_induce",
	StageTopKSweep:   "topk_sweep",
	StageHimorLookup: "himor_lookup",
	StageHimorBuild:  "himor_build",
}

// String returns the snake_case stage name used in metric names and logs.
func (s Stage) String() string {
	if s < 0 || s >= NumStages {
		return "unknown"
	}
	return stageNames[s]
}

// SpanRecord is one completed stage span within a Trace.
type SpanRecord struct {
	// Stage names the instrumented phase.
	Stage Stage
	// Duration is the span's wall-clock time.
	Duration time.Duration
	// Items counts the units the stage processed (RR samples drawn, bucket
	// entries produced, index vertices scanned, merges performed); 0 when
	// the stage has no natural unit or was canceled before producing any.
	Items int64
}

// StepRecord is one completed plan step within a Trace — the layer above
// stage spans: where a SpanRecord says "rr_sample took 3ms", a StepRecord
// says "the CODL sample step was a cache miss". Variant and Kind are the
// engine's names (CODL, index_probe, ...) carried as strings so obs stays
// free of an engine dependency.
type StepRecord struct {
	// Variant is the plan variant executing the step (CODU/CODR/CODL/CODL⁻).
	Variant string
	// Kind is the plan step kind (weight, index_probe, chain, sample,
	// evaluate, extract).
	Kind string
	// Outcome classifies what the step did: hit/miss for index probes,
	// cache_hit/cache_miss/sampled for sampling, canceled/error on failure.
	Outcome string
	// Duration is the step's wall-clock time.
	Duration time.Duration
	// SpanStart and SpanEnd delimit the half-open index range [SpanStart,
	// SpanEnd) of this trace's span slice recorded while the step ran. For a
	// single-threaded query the range is exactly the step's nested stage
	// spans; under a concurrent batch sharing one Trace it is approximate
	// (spans from sibling workers may interleave).
	SpanStart, SpanEnd int
	// Stages is the number of sampling stages a bounded-error adaptive
	// sample step realized before its decision (early_stop/exhausted);
	// 0 for every non-staged step.
	Stages int
	// Gap is the certified normalized influence gap an adaptive sample step
	// stopped on (the smallest decisive per-level margin); 0 when the step
	// is not staged or exhausted the budget without certifying.
	Gap float64
}

// Trace collects the stage spans of one query (or one offline build). It is
// safe for concurrent use: batch queries record spans from several workers.
// A canceled query still flushes the spans it completed — the trace is
// whatever actually ran, which is exactly what an operator debugging a
// timeout needs.
type Trace struct {
	mu    sync.Mutex
	id    string
	seed  uint64
	seedO bool
	spans []SpanRecord
	steps []StepRecord
}

// NewTrace returns an empty trace.
func NewTrace() *Trace { return &Trace{} }

func (t *Trace) add(rec SpanRecord) {
	t.mu.Lock()
	t.spans = append(t.spans, rec)
	t.mu.Unlock()
}

func (t *Trace) addStep(rec StepRecord) {
	t.mu.Lock()
	t.steps = append(t.steps, rec)
	t.mu.Unlock()
}

// EnsureID sets the trace ID if none is set yet and reports whether id is
// now the trace's ID. First writer wins: a serving front end that parsed a
// traceparent header installs the caller's ID before the query runs, and
// the library's later seed-derived EnsureID becomes a no-op.
func (t *Trace) EnsureID(id string) bool {
	if t == nil || id == "" {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.id == "" {
		t.id = id
	}
	return t.id == id
}

// SetSeed records the query seed the trace's work was derived from. First
// writer wins, mirroring EnsureID: a batch sharing one trace keeps the seed
// of its first query. The seed is what makes a logged query replayable — a
// propagated traceparent may own the ID, but the seed still identifies the
// deterministic stream the query consumed.
func (t *Trace) SetSeed(seed uint64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if !t.seedO {
		t.seed, t.seedO = seed, true
	}
	t.mu.Unlock()
}

// Seed returns the recorded query seed and whether one was set.
func (t *Trace) Seed() (uint64, bool) {
	if t == nil {
		return 0, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seed, t.seedO
}

// ID returns the trace ID, or "" when none was assigned.
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.id
}

// Steps returns a copy of the recorded plan steps in completion order.
func (t *Trace) Steps() []StepRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]StepRecord, len(t.steps))
	copy(out, t.steps)
	return out
}

// Spans returns a copy of the recorded spans in completion order.
func (t *Trace) Spans() []SpanRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, len(t.spans))
	copy(out, t.spans)
	return out
}

// Len returns the number of recorded spans.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// String renders the trace as "stage=duration/items ..." in completion
// order, the form the per-query log lines embed.
func (t *Trace) String() string {
	var b strings.Builder
	for i, s := range t.Spans() {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(s.Stage.String())
		b.WriteByte('=')
		b.WriteString(s.Duration.String())
		b.WriteByte('/')
		b.WriteString(strconv.FormatInt(s.Items, 10))
	}
	return b.String()
}
