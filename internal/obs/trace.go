package obs

import (
	"strconv"
	"strings"
	"sync"
	"time"
)

// Stage identifies one instrumented phase of a COD query or offline build.
// Stages are a closed enum so per-stage metrics can live in fixed arrays
// (no map lookups on the hot path) and metric names stay label-free.
type Stage int

// The instrumented stages, in rough pipeline order.
const (
	// StageHACMerge is the agglomerative merge loop (offline clustering and
	// LORE/CODR reclustering alike).
	StageHACMerge Stage = iota
	// StageLoreScore is LORE's reclustering-score sweep over H(q).
	StageLoreScore
	// StageRRSample is RR-graph sampling: shared batches, parallel offline
	// pools, and the restricted per-query loop.
	StageRRSample
	// StageRRInduce is the HFS pass inducing RR graphs into chain buckets
	// (stage 1 of the compressed evaluation).
	StageRRInduce
	// StageTopKSweep is the incremental top-k sweep over the buckets
	// (stage 2 of the compressed evaluation).
	StageTopKSweep
	// StageHimorLookup is the top-down HIMOR index scan of a CODL query.
	StageHimorLookup
	// StageHimorBuild is the offline HIMOR index construction.
	StageHimorBuild
	// NumStages bounds the enum; it is not a stage.
	NumStages
)

var stageNames = [NumStages]string{
	StageHACMerge:    "hac_merge",
	StageLoreScore:   "lore_score",
	StageRRSample:    "rr_sample",
	StageRRInduce:    "rr_induce",
	StageTopKSweep:   "topk_sweep",
	StageHimorLookup: "himor_lookup",
	StageHimorBuild:  "himor_build",
}

// String returns the snake_case stage name used in metric names and logs.
func (s Stage) String() string {
	if s < 0 || s >= NumStages {
		return "unknown"
	}
	return stageNames[s]
}

// SpanRecord is one completed stage span within a Trace.
type SpanRecord struct {
	// Stage names the instrumented phase.
	Stage Stage
	// Duration is the span's wall-clock time.
	Duration time.Duration
	// Items counts the units the stage processed (RR samples drawn, bucket
	// entries produced, index vertices scanned, merges performed); 0 when
	// the stage has no natural unit or was canceled before producing any.
	Items int64
}

// Trace collects the stage spans of one query (or one offline build). It is
// safe for concurrent use: batch queries record spans from several workers.
// A canceled query still flushes the spans it completed — the trace is
// whatever actually ran, which is exactly what an operator debugging a
// timeout needs.
type Trace struct {
	mu    sync.Mutex
	spans []SpanRecord
}

// NewTrace returns an empty trace.
func NewTrace() *Trace { return &Trace{} }

func (t *Trace) add(rec SpanRecord) {
	t.mu.Lock()
	t.spans = append(t.spans, rec)
	t.mu.Unlock()
}

// Spans returns a copy of the recorded spans in completion order.
func (t *Trace) Spans() []SpanRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, len(t.spans))
	copy(out, t.spans)
	return out
}

// Len returns the number of recorded spans.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// String renders the trace as "stage=duration/items ..." in completion
// order, the form the per-query log lines embed.
func (t *Trace) String() string {
	var b strings.Builder
	for i, s := range t.Spans() {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(s.Stage.String())
		b.WriteByte('=')
		b.WriteString(s.Duration.String())
		b.WriteByte('/')
		b.WriteString(strconv.FormatInt(s.Items, 10))
	}
	return b.String()
}
