package obs

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestStageString(t *testing.T) {
	want := map[Stage]string{
		StageHACMerge:    "hac_merge",
		StageLoreScore:   "lore_score",
		StageRRSample:    "rr_sample",
		StageRRInduce:    "rr_induce",
		StageTopKSweep:   "topk_sweep",
		StageHimorLookup: "himor_lookup",
		StageHimorBuild:  "himor_build",
		Stage(-1):        "unknown",
		NumStages:        "unknown",
	}
	for s, name := range want {
		if got := s.String(); got != name {
			t.Errorf("Stage(%d).String() = %q, want %q", s, got, name)
		}
	}
}

func TestTraceRecordsSpans(t *testing.T) {
	tr := NewTrace()
	tr.add(SpanRecord{Stage: StageRRSample, Duration: 2 * time.Millisecond, Items: 40})
	tr.add(SpanRecord{Stage: StageTopKSweep, Duration: time.Millisecond, Items: 7})
	if tr.Len() != 2 {
		t.Fatalf("len = %d, want 2", tr.Len())
	}
	spans := tr.Spans()
	if spans[0].Stage != StageRRSample || spans[0].Items != 40 {
		t.Errorf("span 0 = %+v", spans[0])
	}
	if got, want := tr.String(), "rr_sample=2ms/40 topk_sweep=1ms/7"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestTraceConcurrentAdds(t *testing.T) {
	tr := NewTrace()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.add(SpanRecord{Stage: StageRRSample, Items: 1})
			}
		}()
	}
	wg.Wait()
	if got := tr.Len(); got != 4000 {
		t.Errorf("len = %d, want 4000", got)
	}
}

// TestNilRecorderIsSafe locks in the nil-safety contract: every Recorder
// method — and the Span a nil Recorder hands out — is a no-op, so
// uninstrumented pipeline calls need no nil checks of their own.
func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	span := r.StartSpan(StageRRSample)
	span.End()
	span.EndItems(10)
	r.AddItems(StageRRSample, 5)
	r.CountQuery(nil)
	r.CountQuery(errors.New("boom"))
	r.CountIndexHit()
	if r.Metrics() != nil || r.Trace() != nil {
		t.Error("nil recorder accessors must return nil")
	}
	if NewRecorder(nil, nil) != nil {
		t.Error("NewRecorder(nil, nil) must be nil to keep the fast path")
	}
}

func TestFromContextDefaultsNil(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Error("bare context must yield a nil recorder")
	}
	rec := NewRecorder(nil, NewTrace())
	ctx := WithRecorder(context.Background(), rec)
	if FromContext(ctx) != rec {
		t.Error("recorder did not round-trip through the context")
	}
	if got := WithRecorder(context.Background(), nil); got != context.Background() {
		t.Error("attaching a nil recorder must return the context unchanged")
	}
}

func TestSpanRecordsMetricsAndTrace(t *testing.T) {
	reg := NewRegistry()
	m := NewQueryMetrics(reg)
	tr := NewTrace()
	rec := NewRecorder(m, tr)

	span := rec.StartSpan(StageTopKSweep)
	span.EndItems(12)
	if got := m.StageSeconds(StageTopKSweep).Count(); got != 1 {
		t.Errorf("stage histogram count = %d, want 1", got)
	}
	if got := m.StageItems(StageTopKSweep).Value(); got != 12 {
		t.Errorf("stage items = %d, want 12", got)
	}
	if tr.Len() != 1 {
		t.Fatalf("trace len = %d, want 1", tr.Len())
	}
	if s := tr.Spans()[0]; s.Stage != StageTopKSweep || s.Items != 12 {
		t.Errorf("trace span = %+v", s)
	}

	rec.AddItems(StageRRSample, 30)
	if got := m.StageItems(StageRRSample).Value(); got != 30 {
		t.Errorf("AddItems = %d, want 30", got)
	}
}

func TestCountQueryClassification(t *testing.T) {
	reg := NewRegistry()
	m := NewQueryMetrics(reg)
	rec := NewRecorder(m, nil)

	rec.CountQuery(nil)
	rec.CountQuery(errors.New("bad attr"))
	rec.CountQuery(context.Canceled)
	rec.CountQuery(fmt.Errorf("wrapped: %w", context.DeadlineExceeded))

	if got := m.Queries.Value(); got != 4 {
		t.Errorf("queries = %d, want 4", got)
	}
	if got := m.QueryErrors.Value(); got != 1 {
		t.Errorf("errors = %d, want 1", got)
	}
	if got := m.QueriesCanceled.Value(); got != 2 {
		t.Errorf("canceled = %d, want 2", got)
	}
}

// TestQueryMetricsStageNames asserts every stage gets both a latency
// histogram and an item counter with the documented label-free names.
func TestQueryMetricsStageNames(t *testing.T) {
	reg := NewRegistry()
	NewQueryMetrics(reg)
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for s := Stage(0); s < NumStages; s++ {
		for _, name := range []string{
			"cod_stage_" + s.String() + "_seconds_count",
			"cod_stage_" + s.String() + "_items_total",
		} {
			if !strings.Contains(out, name) {
				t.Errorf("exposition missing %s", name)
			}
		}
	}
	// Idempotent re-registration must not panic or duplicate.
	NewQueryMetrics(reg)
}
