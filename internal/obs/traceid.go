package obs

// Trace-ID derivation and W3C traceparent parsing.
//
// Every query trace carries a 16-byte trace ID rendered as 32 lowercase hex
// digits (the W3C Trace Context format). Serving front ends accept an ID
// from an incoming `traceparent` header so a codserve trace joins the
// caller's distributed trace; everywhere else the ID is derived
// deterministically from the query's seed, so it costs no randomness (the
// §9 determinism contract: instrumentation never draws from any stream a
// result could observe) and the same seeded query always carries the same
// ID — which is exactly what replaying a forensic capture wants.

// splitmix64 is the SplitMix64 finalizer: a cheap, well-mixed bijection
// used only for trace-ID derivation (never for sampling).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

const hexDigits = "0123456789abcdef"

// SeedTraceID derives a deterministic 32-hex-digit W3C trace ID from a
// query seed. Distinct seeds map to distinct-looking IDs via SplitMix64
// mixing; the all-zero ID (invalid per W3C) can never be produced.
func SeedTraceID(seed uint64) string {
	hi := splitmix64(seed)
	lo := splitmix64(hi ^ 0x6f7574636f6d65) // "outcome"; decorrelates the halves
	if hi == 0 && lo == 0 {
		lo = 1
	}
	var b [32]byte
	for i := 0; i < 16; i++ {
		b[15-i] = hexDigits[hi&0xf]
		hi >>= 4
		b[31-i] = hexDigits[lo&0xf]
		lo >>= 4
	}
	return string(b[:])
}

// ParseTraceparent extracts the trace ID from a W3C traceparent header
// value: "00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>". It
// returns the lowercase trace ID and true when the header is well formed
// and the trace ID is not all zeros; a missing or malformed header returns
// ("", false) so callers fall back to seed-derived IDs.
func ParseTraceparent(h string) (string, bool) {
	// version(2) '-' traceid(32) '-' parentid(16) '-' flags(2)
	if len(h) != 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return "", false
	}
	if !isHex(h[:2]) || !isHex(h[36:52]) || !isHex(h[53:]) {
		return "", false
	}
	if h[:2] == "ff" { // forbidden version
		return "", false
	}
	id := h[3:35]
	if !isHex(id) {
		return "", false
	}
	zero := true
	for i := 0; i < len(id); i++ {
		if id[i] != '0' {
			zero = false
			break
		}
	}
	if zero {
		return "", false
	}
	return id, true
}

// isHex reports whether s is entirely lowercase hex digits (the W3C format
// mandates lowercase).
func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
