package obs

import (
	"strings"
	"testing"
)

func TestSeedTraceIDDeterministic(t *testing.T) {
	a, b := SeedTraceID(97), SeedTraceID(97)
	if a != b {
		t.Fatalf("same seed produced different trace IDs: %s vs %s", a, b)
	}
	if c := SeedTraceID(98); c == a {
		t.Errorf("adjacent seeds collided on trace ID %s", a)
	}
}

func TestSeedTraceIDShape(t *testing.T) {
	for _, seed := range []uint64{0, 1, 42, 97, ^uint64(0)} {
		id := SeedTraceID(seed)
		if len(id) != 32 {
			t.Errorf("seed %d: trace ID %q has length %d, want 32", seed, id, len(id))
		}
		if strings.Trim(id, "0") == "" {
			t.Errorf("seed %d: all-zero trace ID %q is invalid per W3C trace-context", seed, id)
		}
		if strings.ToLower(id) != id {
			t.Errorf("seed %d: trace ID %q is not lowercase hex", seed, id)
		}
		if _, ok := ParseTraceparent("00-" + id + "-00f067aa0ba902b7-01"); !ok {
			t.Errorf("seed %d: generated ID %q does not round-trip through ParseTraceparent", seed, id)
		}
	}
}

func TestParseTraceparent(t *testing.T) {
	const id = "4bf92f3577b34da6a3ce929d0e0e4736"
	valid := "00-" + id + "-00f067aa0ba902b7-01"
	got, ok := ParseTraceparent(valid)
	if !ok || got != id {
		t.Fatalf("ParseTraceparent(%q) = %q, %t; want %q, true", valid, got, ok, id)
	}
	for name, h := range map[string]string{
		"empty":            "",
		"truncated":        "00-" + id,
		"too-long":         valid + "-extra",
		"bad-dashes":       "00_" + id + "_00f067aa0ba902b7_01",
		"uppercase-hex":    "00-" + strings.ToUpper(id) + "-00f067aa0ba902b7-01",
		"non-hex-trace":    "00-" + strings.Repeat("g", 32) + "-00f067aa0ba902b7-01",
		"non-hex-version":  "zz-" + id + "-00f067aa0ba902b7-01",
		"version-ff":       "ff-" + id + "-00f067aa0ba902b7-01",
		"all-zero-traceid": "00-" + strings.Repeat("0", 32) + "-00f067aa0ba902b7-01",
	} {
		if got, ok := ParseTraceparent(h); ok {
			t.Errorf("%s: ParseTraceparent(%q) accepted invalid header, returned %q", name, h, got)
		}
	}
}
