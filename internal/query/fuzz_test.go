package query

import (
	"errors"
	"testing"

	"github.com/codsearch/cod/internal/graph"
)

// FuzzParseQuery asserts the parser never panics on arbitrary input, and that
// a successfully parsed, resolved, and normalized predicate round-trips: the
// canonical serialization re-parses and re-normalizes to the identical string
// and hash (the fixed point the cache keying depends on).
func FuzzParseQuery(f *testing.F) {
	for _, seed := range []string{
		"", "0", "ML", "0 AND 1", "a & !b | c",
		"ML AND (ICDE OR KDD) AND size>=20",
		"NOT (0 OR 1) AND conductance<=0.3",
		"node=42 AND k=5 AND variant=codl AND adaptive=true",
		"density>=0.5 AND eps=0.1 AND delta=0.05",
		"((0|1)&(2|3))", "0 AND NOT 0", "size>=", "1.5.2", ")(", "a @ b",
		"!!!!a", "0&&1||2", "k=0", "variant=warp",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		p, err := Parse(input) // must not panic
		if err != nil {
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("Parse(%q) error %T is not *ParseError", input, err)
			}
			_ = pe.Caret() // must not panic either
			return
		}
		// Resolve names against a tiny universe; numeric ids against a large
		// one so most parses survive to the normalize stage.
		lookup := func(name string) (graph.AttrID, bool) {
			switch len(name) % 3 {
			case 0:
				return 0, true
			case 1:
				return 1, true
			}
			return -1, false
		}
		if err := p.Resolve(lookup, 1<<20); err != nil {
			return
		}
		d, err := Normalize(p.Pred)
		if err != nil || d == nil {
			return
		}
		s := d.String()
		p2, err := Parse(s)
		if err != nil {
			t.Fatalf("canonical form %q (from %q) does not re-parse: %v", s, input, err)
		}
		if err := p2.Resolve(nil, 1<<20); err != nil {
			t.Fatalf("canonical form %q does not re-resolve: %v", s, err)
		}
		d2, err := Normalize(p2.Pred)
		if err != nil {
			t.Fatalf("canonical form %q does not re-normalize: %v", s, err)
		}
		if d2.String() != s {
			t.Fatalf("round trip not a fixed point: %q -> %q (input %q)", s, d2.String(), input)
		}
		if d2.Hash64() != d.Hash64() {
			t.Fatalf("round-trip hash changed for %q", input)
		}
	})
}
