package query

import "fmt"

type tokKind int

const (
	tEOF tokKind = iota
	tLParen
	tRParen
	tIdent  // attribute/filter/knob name
	tNumber // integer or decimal literal
	tAnd    // AND, &, &&
	tOr     // OR, |, ||
	tNot    // NOT, !
	tCmp    // >= <= > <
	tEq     // =
)

func (k tokKind) String() string {
	switch k {
	case tEOF:
		return "end of expression"
	case tLParen:
		return "'('"
	case tRParen:
		return "')'"
	case tIdent:
		return "identifier"
	case tNumber:
		return "number"
	case tAnd:
		return "AND"
	case tOr:
		return "OR"
	case tNot:
		return "NOT"
	case tCmp:
		return "comparison"
	case tEq:
		return "'='"
	}
	return "token"
}

type token struct {
	kind tokKind
	text string
	pos  int // byte offset in the input
}

// lex tokenizes the expression; errors are positioned *ParseError values.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(input) {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(':
			toks = append(toks, token{tLParen, "(", i})
			i++
		case c == ')':
			toks = append(toks, token{tRParen, ")", i})
			i++
		case c == '!':
			toks = append(toks, token{tNot, "!", i})
			i++
		case c == '&':
			start := i
			i++
			if i < len(input) && input[i] == '&' {
				i++
			}
			toks = append(toks, token{tAnd, input[start:i], start})
		case c == '|':
			start := i
			i++
			if i < len(input) && input[i] == '|' {
				i++
			}
			toks = append(toks, token{tOr, input[start:i], start})
		case c == '>' || c == '<':
			start := i
			i++
			if i < len(input) && input[i] == '=' {
				i++
			}
			toks = append(toks, token{tCmp, input[start:i], start})
		case c == '=':
			start := i
			i++
			if i < len(input) && input[i] == '=' { // tolerate ==
				i++
			}
			toks = append(toks, token{tEq, input[start:i], start})
		case c >= '0' && c <= '9':
			start := i
			dot := false
			for i < len(input) {
				if input[i] >= '0' && input[i] <= '9' {
					i++
					continue
				}
				if input[i] == '.' && !dot {
					dot = true
					i++
					continue
				}
				break
			}
			if input[i-1] == '.' {
				return nil, &ParseError{Input: input, Pos: start,
					Msg: fmt.Sprintf("malformed number %q", input[start:i])}
			}
			toks = append(toks, token{tNumber, input[start:i], start})
		case isIdentStart(c):
			start := i
			for i < len(input) && isIdentPart(input[i]) {
				i++
			}
			word := input[start:i]
			switch lowerASCII(word) {
			case "and":
				toks = append(toks, token{tAnd, word, start})
			case "or":
				toks = append(toks, token{tOr, word, start})
			case "not":
				toks = append(toks, token{tNot, word, start})
			default:
				toks = append(toks, token{tIdent, word, start})
			}
		default:
			return nil, &ParseError{Input: input, Pos: i,
				Msg: fmt.Sprintf("unexpected character %q", c)}
		}
	}
	toks = append(toks, token{tEOF, "", len(input)})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

// isIdentPart admits '-' so venue- and class-style names (e.g. "codl-",
// "Rule-Learning") lex as one identifier; there is no numeric minus in the
// grammar to collide with.
func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9') || c == '-'
}

func lowerASCII(s string) string {
	hasUpper := false
	for i := 0; i < len(s); i++ {
		if s[i] >= 'A' && s[i] <= 'Z' {
			hasUpper = true
			break
		}
	}
	if !hasUpper {
		return s
	}
	b := []byte(s)
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + 'a' - 'A'
		}
	}
	return string(b)
}
