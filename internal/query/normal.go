package query

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"github.com/codsearch/cod/internal/graph"
)

// MaxClauses bounds the clause count of a normalized predicate; expressions
// whose DNF expansion exceeds it are rejected rather than silently served
// slowly (the cross-product of nested disjunctions grows exponentially).
const MaxClauses = 64

// Literal is one (attribute, polarity) pair of a normalized clause.
type Literal struct {
	Attr graph.AttrID
	Neg  bool
}

// Clause is a conjunction of literals, sorted by (Attr, polarity) with
// positive literals first, deduplicated, and contradiction-free.
type Clause []Literal

// DNF is the canonical disjunctive normal form of a resolved predicate:
// clauses sorted and deduplicated, absorbed supersets removed. Semantically
// equal predicates — however spelled — normalize to one DNF, one String,
// and one Hash: the property cache keying depends on.
type DNF struct {
	clauses []Clause
}

// ErrUnsatisfiable reports a predicate no node can satisfy (every clause
// contained some attribute and its negation).
var ErrUnsatisfiable = fmt.Errorf("query: predicate is unsatisfiable")

// Normalize lowers a resolved predicate to its canonical DNF. A nil
// predicate returns a nil DNF (no attribute constraint). Errors:
// ErrUnsatisfiable for contradictions, a clause-budget error for expansions
// beyond MaxClauses.
func Normalize(e Expr) (*DNF, error) {
	if e == nil {
		return nil, nil
	}
	clauses, err := dnfOf(e, false)
	if err != nil {
		return nil, err
	}
	canon := make([]Clause, 0, len(clauses))
	for _, c := range clauses {
		if cc, ok := canonClause(c); ok {
			canon = append(canon, cc)
		}
	}
	if len(canon) == 0 {
		return nil, ErrUnsatisfiable
	}
	canon = absorb(canon)
	if len(canon) > MaxClauses {
		return nil, budgetErr(len(canon))
	}
	sort.Slice(canon, func(i, j int) bool { return clauseLess(canon[i], canon[j]) })
	return &DNF{clauses: canon}, nil
}

// dnfOf returns the clause sets of e under an outer negation flag (NNF
// push-down fused with the DNF expansion).
func dnfOf(e Expr, neg bool) ([]Clause, error) {
	switch t := e.(type) {
	case *Attr:
		return []Clause{{Literal{Attr: t.ID, Neg: neg}}}, nil
	case *Not:
		return dnfOf(t.X, !neg)
	case *And:
		if neg {
			return unionOf(t.Xs, neg)
		}
		return crossOf(t.Xs, neg)
	case *Or:
		if neg {
			return crossOf(t.Xs, neg)
		}
		return unionOf(t.Xs, neg)
	}
	return nil, fmt.Errorf("query: unknown expression node %T", e)
}

// unionOf concatenates the children's clause sets (OR, or negated AND).
func unionOf(xs []Expr, neg bool) ([]Clause, error) {
	var out []Clause
	for _, x := range xs {
		cs, err := dnfOf(x, neg)
		if err != nil {
			return nil, err
		}
		out = append(out, cs...)
		if len(out) > 4*MaxClauses {
			return nil, budgetErr(len(out))
		}
	}
	return out, nil
}

// crossOf distributes the children's clause sets (AND, or negated OR).
func crossOf(xs []Expr, neg bool) ([]Clause, error) {
	acc := []Clause{nil}
	for _, x := range xs {
		cs, err := dnfOf(x, neg)
		if err != nil {
			return nil, err
		}
		if len(acc)*len(cs) > 4*MaxClauses {
			return nil, budgetErr(len(acc) * len(cs))
		}
		next := make([]Clause, 0, len(acc)*len(cs))
		for _, a := range acc {
			for _, c := range cs {
				merged := make(Clause, 0, len(a)+len(c))
				merged = append(merged, a...)
				merged = append(merged, c...)
				next = append(next, merged)
			}
		}
		acc = next
	}
	return acc, nil
}

func budgetErr(n int) error {
	return fmt.Errorf("query: predicate too complex: normal form needs %d+ clauses (limit %d)", n, MaxClauses)
}

// canonClause sorts and deduplicates a clause's literals; ok is false when
// the clause is contradictory (contains an attribute and its negation).
func canonClause(c Clause) (Clause, bool) {
	out := make(Clause, len(c))
	copy(out, c)
	sort.Slice(out, func(i, j int) bool { return litLess(out[i], out[j]) })
	w := 0
	for _, l := range out {
		if w > 0 {
			prev := out[w-1]
			if l == prev {
				continue
			}
			if l.Attr == prev.Attr {
				return nil, false // a & !a
			}
		}
		out[w] = l
		w++
	}
	return out[:w], true
}

func litLess(a, b Literal) bool {
	if a.Attr != b.Attr {
		return a.Attr < b.Attr
	}
	return !a.Neg && b.Neg
}

func clauseLess(a, b Clause) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return litLess(a[i], b[i])
		}
	}
	return len(a) < len(b)
}

// absorb drops duplicate clauses and clauses subsumed by a subset clause
// (A | A&B ≡ A). Input clauses must be canonical; output order is arbitrary
// (Normalize sorts afterwards).
func absorb(cs []Clause) []Clause {
	// Shortest first: a subset is never longer than its superset.
	sort.Slice(cs, func(i, j int) bool {
		if len(cs[i]) != len(cs[j]) {
			return len(cs[i]) < len(cs[j])
		}
		return clauseLess(cs[i], cs[j])
	})
	kept := cs[:0]
	for _, c := range cs {
		subsumed := false
		for _, k := range kept {
			if isSubset(k, c) {
				subsumed = true
				break
			}
		}
		if !subsumed {
			kept = append(kept, c)
		}
	}
	return kept
}

// isSubset reports whether every literal of sub occurs in sup (both sorted).
func isSubset(sub, sup Clause) bool {
	j := 0
	for _, l := range sub {
		for j < len(sup) && litLess(sup[j], l) {
			j++
		}
		if j >= len(sup) || sup[j] != l {
			return false
		}
		j++
	}
	return true
}

// NumClauses returns the clause count.
func (d *DNF) NumClauses() int { return len(d.clauses) }

// Clauses returns the canonical clauses (shared storage; do not modify).
func (d *DNF) Clauses() []Clause { return d.clauses }

// String returns the stable canonical serialization: literals joined by '&'
// ('!' marks negation), clauses joined by '|' — e.g. "0&!3|2". The output
// re-parses to an equal DNF, and semantically equal predicates serialize
// identically.
func (d *DNF) String() string {
	var b strings.Builder
	for ci, c := range d.clauses {
		if ci > 0 {
			b.WriteByte('|')
		}
		for li, l := range c {
			if li > 0 {
				b.WriteByte('&')
			}
			if l.Neg {
				b.WriteByte('!')
			}
			b.WriteString(strconv.Itoa(int(l.Attr)))
		}
	}
	return b.String()
}

// Hash64 returns the FNV-64a hash of the canonical serialization: the
// predicate's cache-key identity. It is never 0 for a valid DNF (engine
// cache keys reserve 0 for "no compound predicate").
func (d *DNF) Hash64() uint64 {
	var h uint64 = 14695981039346656037
	s := d.String()
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	if h == 0 {
		h = 1
	}
	return h
}

// Hash returns Hash64 formatted as 16 hex digits.
func (d *DNF) Hash() string { return fmt.Sprintf("%016x", d.Hash64()) }

// Single reports whether the predicate is exactly one positive attribute —
// the case the engine lowers onto the legacy single-attribute pipeline (and
// its legacy cache keys).
func (d *DNF) Single() (graph.AttrID, bool) {
	if len(d.clauses) == 1 && len(d.clauses[0]) == 1 && !d.clauses[0][0].Neg {
		return d.clauses[0][0].Attr, true
	}
	return -1, false
}

// Eval evaluates the predicate against one node's attribute membership.
func (d *DNF) Eval(has func(graph.AttrID) bool) bool {
	for _, c := range d.clauses {
		ok := true
		for _, l := range c {
			if has(l.Attr) == l.Neg {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// Attrs returns the distinct attributes the predicate references, ascending.
func (d *DNF) Attrs() []graph.AttrID {
	seen := map[graph.AttrID]bool{}
	var out []graph.AttrID
	for _, c := range d.clauses {
		for _, l := range c {
			if !seen[l.Attr] {
				seen[l.Attr] = true
				out = append(out, l.Attr)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
