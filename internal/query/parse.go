package query

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// ParseError is a positioned query-expression error: Pos is the byte offset
// in Input where parsing (or resolution) failed. Caret renders the standard
// two-line diagnostic front ends embed in error bodies.
type ParseError struct {
	Input string
	Pos   int
	Msg   string
}

// Error implements error.
func (e *ParseError) Error() string {
	return fmt.Sprintf("query: parse error at offset %d: %s", e.Pos, e.Msg)
}

// Caret renders the input with a caret under the error position.
func (e *ParseError) Caret() string {
	pos := e.Pos
	if pos < 0 {
		pos = 0
	}
	if pos > len(e.Input) {
		pos = len(e.Input)
	}
	return e.Input + "\n" + strings.Repeat(" ", pos) + "^"
}

// Variants lists the pipeline names the variant knob accepts.
var Variants = []string{"codl", "codu", "codr", "codl-"}

// Parse lexes and parses one query expression, separating the attribute
// predicate from top-level filters and knobs. The predicate's attribute
// atoms are unresolved (bind them with Resolve); filters and knobs are fully
// validated. All errors are *ParseError values.
func Parse(input string) (*Parsed, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{input: input, toks: toks}
	root, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if tok := p.peek(); tok.kind != tEOF {
		return nil, p.errorf(tok.pos, "unexpected %s", tok.kind)
	}
	out := &Parsed{Input: input}
	pred, err := p.hoist(root, out)
	if err != nil {
		return nil, err
	}
	out.Pred = pred
	SortFilters(out.Filters)
	return out, nil
}

// parser holds the token cursor plus the filter/knob atoms produced while
// parsing (referenced back by hoist through the node pointers).
type parser struct {
	input string
	toks  []token
	i     int

	filters map[Expr]Filter
	knobs   map[Expr]knobSetting
}

type knobSetting struct {
	name  string
	value string
	pos   int
}

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) next() token {
	t := p.toks[p.i]
	if t.kind != tEOF {
		p.i++
	}
	return t
}

func (p *parser) errorf(pos int, format string, args ...any) *ParseError {
	return &ParseError{Input: p.input, Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) parseExpr() (Expr, error) {
	x, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	var xs []Expr
	pos := x.pos()
	for p.peek().kind == tOr {
		p.next()
		y, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		if xs == nil {
			xs = []Expr{x}
		}
		xs = append(xs, y)
	}
	if xs == nil {
		return x, nil
	}
	return &Or{Xs: xs, Pos: pos}, nil
}

func (p *parser) parseTerm() (Expr, error) {
	x, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	var xs []Expr
	pos := x.pos()
	for p.peek().kind == tAnd {
		p.next()
		y, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		if xs == nil {
			xs = []Expr{x}
		}
		xs = append(xs, y)
	}
	if xs == nil {
		return x, nil
	}
	return &And{Xs: xs, Pos: pos}, nil
}

func (p *parser) parseFactor() (Expr, error) {
	if tok := p.peek(); tok.kind == tNot {
		p.next()
		x, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		return &Not{X: x, Pos: tok.pos}, nil
	}
	return p.parseAtom()
}

func (p *parser) parseAtom() (Expr, error) {
	tok := p.next()
	switch tok.kind {
	case tLParen:
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if closing := p.next(); closing.kind != tRParen {
			return nil, p.errorf(closing.pos, "expected ')', got %s", closing.kind)
		}
		return x, nil

	case tNumber:
		id, err := strconv.Atoi(tok.text)
		if err != nil {
			return nil, p.errorf(tok.pos, "attribute id %q is not an integer", tok.text)
		}
		return &Attr{ID: int32(id), Pos: tok.pos}, nil

	case tIdent:
		switch p.peek().kind {
		case tCmp:
			return p.parseFilter(tok)
		case tEq:
			return p.parseKnob(tok)
		}
		return &Attr{Name: tok.text, ID: -1, Pos: tok.pos}, nil

	case tEOF:
		return nil, p.errorf(tok.pos, "expected an attribute, filter, or '(', got end of expression")
	}
	return nil, p.errorf(tok.pos, "expected an attribute, filter, or '(', got %s", tok.kind)
}

// parseFilter parses "<field> <cmp> <number>" with tok the field identifier
// (already consumed, cmp pending).
func (p *parser) parseFilter(tok token) (Expr, error) {
	var field FilterField
	switch lowerASCII(tok.text) {
	case "size":
		field = FieldSize
	case "density":
		field = FieldDensity
	case "conductance":
		field = FieldConductance
	default:
		return nil, p.errorf(tok.pos,
			"%q is not a filter field (want size, density, or conductance)", tok.text)
	}
	opTok := p.next()
	var op CmpOp
	switch opTok.text {
	case ">=":
		op = CmpGE
	case "<=":
		op = CmpLE
	case ">":
		op = CmpGT
	case "<":
		op = CmpLT
	default:
		return nil, p.errorf(opTok.pos, "expected a comparison, got %q", opTok.text)
	}
	valTok := p.next()
	if valTok.kind != tNumber {
		return nil, p.errorf(valTok.pos, "expected a number after %s%s, got %s",
			tok.text, opTok.text, valTok.kind)
	}
	val, err := strconv.ParseFloat(valTok.text, 64)
	if err != nil || math.IsInf(val, 0) || math.IsNaN(val) {
		return nil, p.errorf(valTok.pos, "malformed number %q", valTok.text)
	}
	switch field {
	case FieldSize:
		//codvet:ignore floatcmp exact integrality test; Trunc(v) == v iff v is an integer
		if val != math.Trunc(val) {
			return nil, p.errorf(valTok.pos, "size bound must be an integer, got %q", valTok.text)
		}
	case FieldDensity, FieldConductance:
		if val < 0 || val > 1 {
			return nil, p.errorf(valTok.pos, "%s bound %q out of range [0,1]", field, valTok.text)
		}
	}
	f := Filter{Field: field, Op: op, Value: val, Pos: tok.pos}
	marker := &Attr{Name: "\x00filter", ID: -1, Pos: tok.pos}
	if p.filters == nil {
		p.filters = map[Expr]Filter{}
	}
	p.filters[marker] = f
	return marker, nil
}

// parseKnob parses "<name> = <value>" with tok the knob identifier.
func (p *parser) parseKnob(tok token) (Expr, error) {
	name := lowerASCII(tok.text)
	switch name {
	case "node", "k", "variant", "adaptive", "eps", "delta":
	default:
		return nil, p.errorf(tok.pos,
			"%q is not a knob (want node, k, variant, adaptive, eps, or delta)", tok.text)
	}
	p.next() // the '='
	valTok := p.next()
	if valTok.kind != tNumber && valTok.kind != tIdent {
		return nil, p.errorf(valTok.pos, "expected a value after %s=, got %s", tok.text, valTok.kind)
	}
	marker := &Attr{Name: "\x00knob", ID: -1, Pos: tok.pos}
	if p.knobs == nil {
		p.knobs = map[Expr]knobSetting{}
	}
	p.knobs[marker] = knobSetting{name: name, value: valTok.text, pos: valTok.pos}
	return marker, nil
}

// hoist walks the top-level AND spine of the parse tree, extracting filter
// and knob atoms into out and returning the residual attribute predicate
// (nil when the expression carries none). A filter or knob found under OR,
// NOT, or parenthesized disjunction is rejected with a positioned error.
func (p *parser) hoist(e Expr, out *Parsed) (Expr, error) {
	var preds []Expr
	var walk func(e Expr) error
	walk = func(e Expr) error {
		if f, ok := p.filters[e]; ok {
			out.Filters = append(out.Filters, f)
			return nil
		}
		if k, ok := p.knobs[e]; ok {
			return p.applyKnob(out, k)
		}
		if a, ok := e.(*And); ok {
			for _, x := range a.Xs {
				if err := walk(x); err != nil {
					return err
				}
			}
			return nil
		}
		// Anything else is predicate structure; it must not hide filters or
		// knobs below OR/NOT.
		if err := p.rejectNested(e); err != nil {
			return err
		}
		preds = append(preds, e)
		return nil
	}
	if err := walk(e); err != nil {
		return nil, err
	}
	switch len(preds) {
	case 0:
		return nil, nil
	case 1:
		return preds[0], nil
	}
	return &And{Xs: preds, Pos: preds[0].pos()}, nil
}

// rejectNested errors on any filter/knob marker below a non-AND node.
func (p *parser) rejectNested(e Expr) error {
	if f, ok := p.filters[e]; ok {
		return p.errorf(f.Pos, "filter %s must be a top-level AND conjunct", f)
	}
	if k, ok := p.knobs[e]; ok {
		return p.errorf(k.pos, "knob %s= must be a top-level AND conjunct", k.name)
	}
	switch t := e.(type) {
	case *Not:
		return p.rejectNested(t.X)
	case *And:
		for _, x := range t.Xs {
			if err := p.rejectNested(x); err != nil {
				return err
			}
		}
	case *Or:
		for _, x := range t.Xs {
			if err := p.rejectNested(x); err != nil {
				return err
			}
		}
	}
	return nil
}

// applyKnob validates one knob setting into out.Knobs, rejecting duplicates.
func (p *parser) applyKnob(out *Parsed, k knobSetting) error {
	switch k.name {
	case "node":
		if out.Knobs.HasNode {
			return p.errorf(k.pos, "duplicate knob node=")
		}
		n, err := strconv.Atoi(k.value)
		if err != nil || n < 0 {
			return p.errorf(k.pos, "node= wants a non-negative integer, got %q", k.value)
		}
		out.Knobs.Node, out.Knobs.HasNode = n, true
	case "k":
		if out.Knobs.K != 0 {
			return p.errorf(k.pos, "duplicate knob k=")
		}
		n, err := strconv.Atoi(k.value)
		if err != nil || n < 1 {
			return p.errorf(k.pos, "k= wants a positive integer, got %q", k.value)
		}
		out.Knobs.K = n
	case "variant":
		if out.Knobs.Variant != "" {
			return p.errorf(k.pos, "duplicate knob variant=")
		}
		v := lowerASCII(k.value)
		ok := false
		for _, name := range Variants {
			if v == name {
				ok = true
				break
			}
		}
		if !ok {
			return p.errorf(k.pos, "variant= wants one of %s, got %q",
				strings.Join(Variants, "/"), k.value)
		}
		out.Knobs.Variant = v
	case "adaptive":
		if out.Knobs.HasAdaptive {
			return p.errorf(k.pos, "duplicate knob adaptive=")
		}
		switch lowerASCII(k.value) {
		case "true", "on", "1":
			out.Knobs.Adaptive = true
		case "false", "off", "0":
			out.Knobs.Adaptive = false
		default:
			return p.errorf(k.pos, "adaptive= wants true/false, got %q", k.value)
		}
		out.Knobs.HasAdaptive = true
	case "eps", "delta":
		v, err := strconv.ParseFloat(k.value, 64)
		if err != nil || v <= 0 || v >= 1 {
			return p.errorf(k.pos, "%s= wants a number in (0,1), got %q", k.name, k.value)
		}
		if k.name == "eps" {
			if out.Knobs.Eps != 0 {
				return p.errorf(k.pos, "duplicate knob eps=")
			}
			out.Knobs.Eps = v
		} else {
			if out.Knobs.Delta != 0 {
				return p.errorf(k.pos, "duplicate knob delta=")
			}
			out.Knobs.Delta = v
		}
	}
	return nil
}
