// Package query is the typed query model behind the COD predicate DSL: a
// lexer and recursive-descent parser for a small boolean expression grammar
// over attributes, community-level filters and execution knobs, a validated
// AST, and a canonical disjunctive normal form whose stable serialization
// (and 16-hex hash) makes semantically equal predicates one cache key.
//
// Grammar (EBNF, operators case-insensitive):
//
//	query   = expr .
//	expr    = term { ("OR" | "|" | "||") term } .
//	term    = factor { ("AND" | "&" | "&&") factor } .
//	factor  = { "NOT" | "!" } atom .
//	atom    = "(" expr ")" | attribute | filter | knob .
//	attribute = IDENT | INT .                     // name or numeric id
//	filter  = ("size" | "density" | "conductance") cmp NUMBER .
//	cmp     = ">=" | "<=" | ">" | "<" .
//	knob    = ("node" | "k" | "variant" | "adaptive" | "eps" | "delta") "=" value .
//
// Filters and knobs may appear only as top-level conjuncts: they configure
// the query, so negating them or placing them under OR has no meaning and is
// rejected with a positioned error. The remaining boolean structure over
// attributes is the predicate; Normalize lowers it to the canonical DNF.
package query

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/codsearch/cod/internal/graph"
)

// Expr is a node of the predicate AST. The concrete types are Attr, Not,
// And, and Or.
type Expr interface {
	pos() int
}

// Attr is an attribute atom, referenced by name or numeric id. ID is -1
// until Resolve binds a name against the graph's attribute universe.
type Attr struct {
	Name string       // empty for numeric references
	ID   graph.AttrID // -1 while unresolved
	Pos  int
}

// Not negates a sub-predicate.
type Not struct {
	X   Expr
	Pos int
}

// And conjoins its children (n-ary, len >= 2).
type And struct {
	Xs  []Expr
	Pos int
}

// Or disjoins its children (n-ary, len >= 2).
type Or struct {
	Xs  []Expr
	Pos int
}

func (a *Attr) pos() int { return a.Pos }
func (n *Not) pos() int  { return n.Pos }
func (a *And) pos() int  { return a.Pos }
func (o *Or) pos() int   { return o.Pos }

// FilterField names a community-level measure a filter constrains.
type FilterField int

const (
	// FieldSize is |C|, the community's node count.
	FieldSize FilterField = iota
	// FieldDensity is the topology density ρ(C) = edges / node pairs.
	FieldDensity
	// FieldConductance is the cut conductance of (C, V\C).
	FieldConductance
)

// String returns the field's DSL spelling.
func (f FilterField) String() string {
	switch f {
	case FieldSize:
		return "size"
	case FieldDensity:
		return "density"
	case FieldConductance:
		return "conductance"
	}
	return "unknown"
}

// CmpOp is a filter comparison operator.
type CmpOp int

const (
	// CmpGE is >=.
	CmpGE CmpOp = iota
	// CmpLE is <=.
	CmpLE
	// CmpGT is >.
	CmpGT
	// CmpLT is <.
	CmpLT
)

// String returns the operator's DSL spelling.
func (o CmpOp) String() string {
	switch o {
	case CmpGE:
		return ">="
	case CmpLE:
		return "<="
	case CmpGT:
		return ">"
	case CmpLT:
		return "<"
	}
	return "?"
}

// Filter is one community-level constraint applied during the chain sweep:
// the community answering the query must satisfy every filter.
type Filter struct {
	Field FilterField
	Op    CmpOp
	Value float64
	// Pos is the filter's byte offset in the source expression (diagnostics).
	Pos int
}

// Accept reports whether measure value v satisfies the filter.
func (f Filter) Accept(v float64) bool {
	switch f.Op {
	case CmpGE:
		return v >= f.Value
	case CmpLE:
		return v <= f.Value
	case CmpGT:
		return v > f.Value
	case CmpLT:
		return v < f.Value
	}
	return false
}

// String returns the filter's canonical DSL spelling.
func (f Filter) String() string {
	if f.Field == FieldSize {
		return fmt.Sprintf("%s%s%d", f.Field, f.Op, int(f.Value))
	}
	return fmt.Sprintf("%s%s%s", f.Field, f.Op, strconv.FormatFloat(f.Value, 'g', -1, 64))
}

// SortFilters orders filters canonically: by field, then operator, then
// value. Semantically equal filter sets serialize identically.
func SortFilters(fs []Filter) {
	for i := 1; i < len(fs); i++ {
		for j := i; j > 0 && filterLess(fs[j], fs[j-1]); j-- {
			fs[j], fs[j-1] = fs[j-1], fs[j]
		}
	}
}

func filterLess(a, b Filter) bool {
	if a.Field != b.Field {
		return a.Field < b.Field
	}
	if a.Op != b.Op {
		return a.Op < b.Op
	}
	return a.Value < b.Value
}

// Knobs are the execution settings an expression can carry as top-level
// conjuncts. Zero fields are "unset" except where a Has flag disambiguates.
type Knobs struct {
	// Node is the query node when the expression carries node=N.
	Node    int
	HasNode bool
	// K overrides the required influence rank (0 = searcher default).
	K int
	// Variant selects the pipeline: "codl", "codu", "codr" or "codl-".
	Variant string
	// Adaptive toggles bounded-error staged evaluation when HasAdaptive.
	Adaptive    bool
	HasAdaptive bool
	// Eps and Delta tune adaptive certification (0 = default).
	Eps   float64
	Delta float64
}

// Parsed is the outcome of parsing one query expression: the boolean
// attribute predicate (nil when the expression has none), the community
// filters, and the execution knobs.
type Parsed struct {
	Pred    Expr
	Filters []Filter
	Knobs   Knobs
	// Input is the source expression (caret rendering for late errors).
	Input string
}

// Resolve binds every attribute atom of the predicate against a graph's
// attribute universe: named atoms through lookup (nil means no names exist),
// numeric atoms by range check against numAttrs. Errors are *ParseError
// values positioned at the offending atom.
func (p *Parsed) Resolve(lookup func(name string) (graph.AttrID, bool), numAttrs int) error {
	if p.Pred == nil {
		return nil
	}
	return resolveExpr(p.Pred, lookup, numAttrs, p.Input)
}

func resolveExpr(e Expr, lookup func(string) (graph.AttrID, bool), numAttrs int, input string) error {
	switch t := e.(type) {
	case *Attr:
		if t.Name != "" {
			if lookup == nil {
				return &ParseError{Input: input, Pos: t.Pos,
					Msg: fmt.Sprintf("graph has no attribute names; reference attribute %q by numeric id", t.Name)}
			}
			id, ok := lookup(t.Name)
			if !ok {
				return &ParseError{Input: input, Pos: t.Pos,
					Msg: fmt.Sprintf("unknown attribute name %q", t.Name)}
			}
			t.ID = id
			return nil
		}
		if t.ID < 0 || (numAttrs > 0 && int(t.ID) >= numAttrs) {
			return &ParseError{Input: input, Pos: t.Pos,
				Msg: fmt.Sprintf("attribute %d out of range [0,%d)", t.ID, numAttrs)}
		}
		return nil
	case *Not:
		return resolveExpr(t.X, lookup, numAttrs, input)
	case *And:
		for _, x := range t.Xs {
			if err := resolveExpr(x, lookup, numAttrs, input); err != nil {
				return err
			}
		}
		return nil
	case *Or:
		for _, x := range t.Xs {
			if err := resolveExpr(x, lookup, numAttrs, input); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("query: unknown expression node %T", e)
}

// renderExpr writes the predicate back in minimal-parenthesis DSL form
// (diagnostics; Normalize's DNF is the canonical serialization).
func renderExpr(e Expr) string {
	var b strings.Builder
	writeExpr(&b, e, 0)
	return b.String()
}

// precedence: Or=1, And=2, Not=3, Attr=4.
func writeExpr(b *strings.Builder, e Expr, outer int) {
	switch t := e.(type) {
	case *Attr:
		if t.Name != "" {
			b.WriteString(t.Name)
		} else {
			fmt.Fprintf(b, "%d", t.ID)
		}
	case *Not:
		b.WriteByte('!')
		writeExpr(b, t.X, 3)
	case *And:
		if outer > 2 {
			b.WriteByte('(')
		}
		for i, x := range t.Xs {
			if i > 0 {
				b.WriteByte('&')
			}
			writeExpr(b, x, 2)
		}
		if outer > 2 {
			b.WriteByte(')')
		}
	case *Or:
		if outer > 1 {
			b.WriteByte('(')
		}
		for i, x := range t.Xs {
			if i > 0 {
				b.WriteByte('|')
			}
			writeExpr(b, x, 1)
		}
		if outer > 1 {
			b.WriteByte(')')
		}
	}
}
