package query

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"github.com/codsearch/cod/internal/graph"
)

// testLookup resolves a small fixed name universe.
func testLookup(name string) (graph.AttrID, bool) {
	names := []string{"ML", "DB", "IR", "AI", "ICDE", "KDD"}
	for i, n := range names {
		if strings.EqualFold(n, name) {
			return graph.AttrID(i), true
		}
	}
	return -1, false
}

func mustParse(t *testing.T, expr string) *Parsed {
	t.Helper()
	p, err := Parse(expr)
	if err != nil {
		t.Fatalf("Parse(%q): %v", expr, err)
	}
	return p
}

func mustNormalize(t *testing.T, expr string) *DNF {
	t.Helper()
	p := mustParse(t, expr)
	if err := p.Resolve(testLookup, 6); err != nil {
		t.Fatalf("Resolve(%q): %v", expr, err)
	}
	d, err := Normalize(p.Pred)
	if err != nil {
		t.Fatalf("Normalize(%q): %v", expr, err)
	}
	return d
}

func TestParseCompound(t *testing.T) {
	p := mustParse(t, "ML AND (ICDE OR KDD) AND size>=20 AND k=7")
	if p.Pred == nil {
		t.Fatal("no predicate parsed")
	}
	if len(p.Filters) != 1 || p.Filters[0].Field != FieldSize || p.Filters[0].Op != CmpGE || p.Filters[0].Value != 20 {
		t.Fatalf("filters = %+v", p.Filters)
	}
	if p.Knobs.K != 7 {
		t.Fatalf("k knob = %d, want 7", p.Knobs.K)
	}
	if err := p.Resolve(testLookup, 6); err != nil {
		t.Fatalf("resolve: %v", err)
	}
	d, err := Normalize(p.Pred)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := d.String(), "0&4|0&5"; got != want {
		t.Fatalf("DNF = %q, want %q", got, want)
	}
}

func TestParseOperatorSpellings(t *testing.T) {
	// Keyword and symbol spellings are one grammar.
	for _, expr := range []string{"ML AND NOT DB", "ML & !DB", "ml && not db", "ML&&!DB"} {
		d := mustNormalize(t, expr)
		if got := d.String(); got != "0&!1" {
			t.Fatalf("%q normalized to %q, want 0&!1", expr, got)
		}
	}
	for _, expr := range []string{"ML OR DB", "ML | DB", "ml || db"} {
		d := mustNormalize(t, expr)
		if got := d.String(); got != "0|1" {
			t.Fatalf("%q normalized to %q, want 0|1", expr, got)
		}
	}
}

func TestParseKnobs(t *testing.T) {
	p := mustParse(t, "node=42 AND variant=CODR AND adaptive=true AND eps=0.1 AND delta=0.05")
	k := p.Knobs
	if !k.HasNode || k.Node != 42 {
		t.Fatalf("node knob = %+v", k)
	}
	if k.Variant != "codr" {
		t.Fatalf("variant = %q", k.Variant)
	}
	if !k.HasAdaptive || !k.Adaptive || k.Eps != 0.1 || k.Delta != 0.05 {
		t.Fatalf("adaptive knobs = %+v", k)
	}
	if p.Pred != nil {
		t.Fatal("knob-only expression produced a predicate")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		expr string
		want string // substring of the error
	}{
		{"", "end of expression"},
		{"ML AND", "end of expression"},
		{"(ML", "expected ')'"},
		{"ML)", "unexpected"},
		{"ML @ DB", "unexpected character"},
		{"size>=", "expected a number"},
		{"size>=2.5", "integer"},
		{"density>=1.5", "out of range"},
		{"bogus>=3", "not a filter field"},
		{"bogus=3", "not a knob"},
		{"k=0", "positive integer"},
		{"node=-1", "unexpected character"},
		{"variant=warp", "variant="},
		{"adaptive=maybe", "true/false"},
		{"k=3 AND k=4", "duplicate"},
		{"NOT size>=3", "top-level"},
		{"ML OR size>=3", "top-level"},
		{"ML OR k=3", "top-level"},
		{"(ML OR DB) AND NOT (IR AND conductance<=0.3)", "top-level"},
	}
	for _, tc := range cases {
		_, err := Parse(tc.expr)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want error containing %q", tc.expr, tc.want)
			continue
		}
		var pe *ParseError
		if !errors.As(err, &pe) {
			t.Errorf("Parse(%q) error %T is not *ParseError", tc.expr, err)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Parse(%q) = %q, want substring %q", tc.expr, err, tc.want)
		}
	}
}

func TestParseErrorCaret(t *testing.T) {
	_, err := Parse("ML AND bogus>=3")
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("error %T is not *ParseError", err)
	}
	if pe.Pos != 7 {
		t.Fatalf("Pos = %d, want 7", pe.Pos)
	}
	caret := pe.Caret()
	lines := strings.Split(caret, "\n")
	if len(lines) != 2 || lines[0] != "ML AND bogus>=3" || lines[1] != "       ^" {
		t.Fatalf("Caret() = %q", caret)
	}
}

func TestResolveErrors(t *testing.T) {
	p := mustParse(t, "ML AND Quantum")
	err := p.Resolve(testLookup, 6)
	if err == nil || !strings.Contains(err.Error(), "unknown attribute name") {
		t.Fatalf("unknown name error = %v", err)
	}
	var pe *ParseError
	if !errors.As(err, &pe) || pe.Pos != 7 {
		t.Fatalf("unknown-name error not positioned at the atom: %v", err)
	}

	p = mustParse(t, "0 AND 9")
	if err := p.Resolve(testLookup, 6); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("out-of-range id error = %v", err)
	}

	p = mustParse(t, "ML")
	if err := p.Resolve(nil, 6); err == nil || !strings.Contains(err.Error(), "no attribute names") {
		t.Fatalf("nil lookup error = %v", err)
	}
}

func TestFilterAccept(t *testing.T) {
	cases := []struct {
		f    Filter
		v    float64
		want bool
	}{
		{Filter{Field: FieldSize, Op: CmpGE, Value: 20}, 20, true},
		{Filter{Field: FieldSize, Op: CmpGE, Value: 20}, 19, false},
		{Filter{Field: FieldConductance, Op: CmpLE, Value: 0.3}, 0.3, true},
		{Filter{Field: FieldConductance, Op: CmpLE, Value: 0.3}, 0.31, false},
		{Filter{Field: FieldDensity, Op: CmpGT, Value: 0.5}, 0.5, false},
		{Filter{Field: FieldDensity, Op: CmpLT, Value: 0.5}, 0.49, true},
	}
	for _, tc := range cases {
		if got := tc.f.Accept(tc.v); got != tc.want {
			t.Errorf("%s.Accept(%v) = %v, want %v", tc.f, tc.v, got, tc.want)
		}
	}
}

func TestNormalizeCanonical(t *testing.T) {
	cases := []struct {
		exprs []string // all must normalize identically
		want  string
	}{
		{[]string{"ML AND DB", "DB AND ML", "db & ml", "(ML) AND (DB)"}, "0&1"},
		{[]string{"ML AND (IR OR NOT AI)", "(NOT AI OR IR) AND ML"}, "0&2|0&!3"},
		{[]string{"IR OR (ICDE AND KDD)", "(KDD AND ICDE) OR IR", "IR OR IR OR ICDE AND KDD"}, "2|4&5"},
		{[]string{"NOT (ML OR DB)", "NOT ML AND NOT DB"}, "!0&!1"},
		{[]string{"NOT (ML AND DB)", "NOT ML OR NOT DB"}, "!0|!1"},
		// Absorption: A | (A AND B) = A; duplicate literals collapse.
		{[]string{"ML OR (ML AND DB)", "ML AND ML OR ML AND DB AND ML"}, "0"},
		// Tautologous disjunct elimination is NOT performed (A | !A stays),
		// but contradictions within a clause drop the clause.
		{[]string{"ML AND (DB OR NOT DB AND DB)", "ML AND DB"}, "0&1"},
	}
	for _, tc := range cases {
		for _, expr := range tc.exprs {
			d := mustNormalize(t, expr)
			if got := d.String(); got != tc.want {
				t.Errorf("Normalize(%q) = %q, want %q", expr, got, tc.want)
			}
		}
	}
}

func TestNormalizeUnsatisfiable(t *testing.T) {
	p := mustParse(t, "ML AND NOT ML")
	if err := p.Resolve(testLookup, 6); err != nil {
		t.Fatal(err)
	}
	if _, err := Normalize(p.Pred); !errors.Is(err, ErrUnsatisfiable) {
		t.Fatalf("Normalize(ML AND NOT ML) error = %v, want ErrUnsatisfiable", err)
	}
}

func TestNormalizeBlowupBudget(t *testing.T) {
	// (a|b) AND (c|d) AND ... over 8 disjunction pairs = 2^8 = 256 clauses,
	// beyond the 64-clause budget.
	terms := make([]string, 8)
	for i := range terms {
		terms[i] = "(0 OR 1)"
	}
	expr := strings.Join(terms, " AND ")
	p := mustParse(t, expr)
	if err := p.Resolve(testLookup, 6); err != nil {
		t.Fatal(err)
	}
	// Absorption collapses repeated pairs, so also pin the budget on fully
	// distinct attributes: 8 disjoint pairs expand to 256 distinct clauses.
	terms = terms[:0]
	for i := 0; i < 16; i += 2 {
		terms = append(terms, fmt.Sprintf("(%d|%d)", i, i+1))
	}
	p = mustParse(t, strings.Join(terms, "&"))
	if err := p.Resolve(testLookup, 16); err != nil {
		t.Fatal(err)
	}
	if _, err := Normalize(p.Pred); err == nil || !strings.Contains(err.Error(), "too complex") {
		t.Fatalf("blowup error = %v", err)
	}
}

// TestGoldenHashes locks the 16-hex normal-form hashes: stable across field
// reordering (the cache-key property) and across releases (the serialized
// manifests property).
func TestGoldenHashes(t *testing.T) {
	golden := []struct {
		exprs []string
		hash  string
	}{
		{[]string{"ML AND DB", "DB AND ML", "(DB) & (ML)"}, "4e346d181d21dcce"},
		{[]string{"ML AND NOT AI OR IR", "IR OR (NOT AI AND ML)"}, "0c62d57f6998e119"},
		{[]string{"IR OR ICDE AND KDD", "(KDD & ICDE) | IR"}, "4906d94259338f8c"},
		{[]string{"ML", "ml OR ML", "ML AND ML"}, "af63ad4c86019caf"},
		{[]string{"DB AND IR AND AI", "AI & IR & DB", "IR & (AI & DB)"}, "324f7deb07c930ff"},
	}
	for _, tc := range golden {
		for _, expr := range tc.exprs {
			d := mustNormalize(t, expr)
			if got := d.Hash(); got != tc.hash {
				t.Errorf("Hash(%q) = %s, want %s (dnf %q)", expr, got, tc.hash, d.String())
			}
			if d.Hash64() == 0 {
				t.Errorf("Hash64(%q) = 0, reserved for no-predicate", expr)
			}
		}
	}
}

func TestSingle(t *testing.T) {
	if a, ok := mustNormalize(t, "DB").Single(); !ok || a != 1 {
		t.Fatalf("Single(DB) = %d, %v", a, ok)
	}
	for _, expr := range []string{"NOT DB", "ML AND DB", "ML OR DB"} {
		if _, ok := mustNormalize(t, expr).Single(); ok {
			t.Fatalf("Single(%q) unexpectedly true", expr)
		}
	}
}

func TestEval(t *testing.T) {
	d := mustNormalize(t, "ML AND (ICDE OR KDD) AND NOT DB")
	has := func(set ...graph.AttrID) func(graph.AttrID) bool {
		return func(a graph.AttrID) bool {
			for _, s := range set {
				if s == a {
					return true
				}
			}
			return false
		}
	}
	cases := []struct {
		attrs []graph.AttrID
		want  bool
	}{
		{[]graph.AttrID{0, 4}, true},       // ML + ICDE
		{[]graph.AttrID{0, 5}, true},       // ML + KDD
		{[]graph.AttrID{0, 4, 1}, false},   // carries DB
		{[]graph.AttrID{4, 5}, false},      // no ML
		{[]graph.AttrID{0}, false},         // no venue
		{[]graph.AttrID{0, 4, 5, 2}, true}, // extras fine
	}
	for _, tc := range cases {
		if got := d.Eval(has(tc.attrs...)); got != tc.want {
			t.Errorf("Eval(%v) = %v, want %v", tc.attrs, got, tc.want)
		}
	}
	if got := mustNormalize(t, "NOT ML").Eval(has()); !got {
		t.Error("Eval(NOT ML) on attribute-less node = false, want true")
	}
}

func TestAttrs(t *testing.T) {
	d := mustNormalize(t, "KDD AND ML OR NOT IR")
	got := d.Attrs()
	want := []graph.AttrID{0, 2, 5}
	if len(got) != len(want) {
		t.Fatalf("Attrs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Attrs = %v, want %v", got, want)
		}
	}
}

// TestRoundTrip locks serialize→parse→normalize→serialize as the identity
// on canonical forms (the fuzz target's property, pinned on real shapes).
func TestRoundTrip(t *testing.T) {
	for _, expr := range []string{
		"ML", "NOT ML", "ML AND DB", "ML OR DB",
		"ML AND (ICDE OR KDD) AND NOT DB",
		"(ML OR DB) AND (IR OR AI) AND KDD",
		"NOT (ML AND (DB OR NOT IR))",
	} {
		d := mustNormalize(t, expr)
		s := d.String()
		p2, err := Parse(s)
		if err != nil {
			t.Fatalf("reparse(%q): %v", s, err)
		}
		if err := p2.Resolve(nil, 6); err != nil {
			t.Fatalf("re-resolve(%q): %v", s, err)
		}
		d2, err := Normalize(p2.Pred)
		if err != nil {
			t.Fatalf("renormalize(%q): %v", s, err)
		}
		if d2.String() != s {
			t.Fatalf("round trip %q -> %q -> %q", expr, s, d2.String())
		}
		if d2.Hash() != d.Hash() {
			t.Fatalf("round-trip hash changed: %s -> %s", d.Hash(), d2.Hash())
		}
	}
}

func TestSortFiltersCanonical(t *testing.T) {
	a := mustParse(t, "size>=20 AND conductance<=0.3 AND density>=0.1")
	b := mustParse(t, "conductance<=0.3 AND density>=0.1 AND size>=20")
	if len(a.Filters) != 3 || len(b.Filters) != 3 {
		t.Fatalf("filters: %v / %v", a.Filters, b.Filters)
	}
	for i := range a.Filters {
		af, bf := a.Filters[i], b.Filters[i]
		if af.Field != bf.Field || af.Op != bf.Op || af.Value != bf.Value {
			t.Fatalf("filter order not canonical: %v vs %v", a.Filters, b.Filters)
		}
	}
}
