package cod

import "testing"

// The whole pipeline must work under the linear threshold model too (the
// framework is model-agnostic as long as RR-set evaluation applies).
func TestSearcherLinearThreshold(t *testing.T) {
	g := buildTestGraph(t)
	s, err := NewSearcher(g, Options{K: 5, Theta: 5, Seed: 3, Model: ModelLT})
	if err != nil {
		t.Fatal(err)
	}
	var q NodeID = -1
	for v := NodeID(0); int(v) < g.N(); v++ {
		if len(g.Attrs(v)) > 0 {
			q = v
			break
		}
	}
	com, err := s.Discover(q, g.Attrs(q)[0])
	if err != nil {
		t.Fatal(err)
	}
	if com.Found && !com.Contains(q) {
		t.Error("LT community missing query node")
	}
	infl, err := s.EstimateInfluence(q)
	if err != nil {
		t.Fatal(err)
	}
	if infl < 1 || infl > float64(g.N()) {
		t.Errorf("LT influence %f out of range", infl)
	}
	comU, err := s.DiscoverUnattributed(q)
	if err != nil {
		t.Fatal(err)
	}
	if comU.Found && !comU.Contains(q) {
		t.Error("LT CODU community missing query node")
	}
}

// IC and LT generally rank differently, but both must be internally
// deterministic for a fixed seed.
func TestModelDeterminism(t *testing.T) {
	g := buildTestGraph(t)
	for _, model := range []Model{ModelIC, ModelLT} {
		run := func() int {
			s, err := NewSearcher(g, Options{K: 3, Theta: 4, Seed: 5, Model: model})
			if err != nil {
				t.Fatal(err)
			}
			com, err := s.Discover(0, g.Attrs(0)[0])
			if err != nil {
				t.Fatal(err)
			}
			return com.Size()
		}
		if a, b := run(), run(); a != b {
			t.Errorf("model %v nondeterministic: %d vs %d", model, a, b)
		}
	}
}

// Balanced hierarchies must still answer queries correctly and reduce the
// community-chain depth on skewed graphs.
func TestSearcherBalanced(t *testing.T) {
	g := buildTestGraph(t)
	plain, err := NewSearcher(g, Options{K: 5, Theta: 4, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	bal, err := NewSearcher(g, Options{K: 5, Theta: 4, Seed: 6, Balanced: true})
	if err != nil {
		t.Fatal(err)
	}
	var q NodeID
	for v := NodeID(0); int(v) < g.N(); v++ {
		if len(g.Attrs(v)) > 0 {
			q = v
			break
		}
	}
	com, err := bal.Discover(q, g.Attrs(q)[0])
	if err != nil {
		t.Fatal(err)
	}
	if com.Found && !com.Contains(q) {
		t.Error("balanced community missing q")
	}
	_ = plain

	// On a hub star (caterpillar dendrogram) the rebalanced chains must be
	// drastically shorter.
	const n = 200
	sb := NewGraphBuilder(n, 1)
	for v := NodeID(1); v < n; v++ {
		if err := sb.AddEdge(0, v); err != nil {
			t.Fatal(err)
		}
	}
	_ = sb.SetAttrs(0, 0)
	star := sb.Build()
	sPlain, err := NewSearcher(star, Options{Theta: 1, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	sBal, err := NewSearcher(star, Options{Theta: 1, Seed: 6, Balanced: true})
	if err != nil {
		t.Fatal(err)
	}
	sumPlain, sumBal := 0, 0
	for v := NodeID(0); v < n; v++ {
		dp, _ := sPlain.HierarchyDepth(v)
		db, _ := sBal.HierarchyDepth(v)
		sumPlain += dp
		sumBal += db
	}
	if sumBal*4 > sumPlain {
		t.Errorf("balanced Σ|H| = %d not far below plain %d on a star", sumBal, sumPlain)
	}
}
