package cod

import (
	"fmt"
	"io"

	"github.com/codsearch/cod/internal/core"
	"github.com/codsearch/cod/internal/hier"
)

// SaveIndex persists the Searcher's offline state (the community hierarchy
// and the HIMOR index) so a later process can skip the offline phase with
// LoadSearcher. The graph itself is not included; persist it separately
// with Graph.WriteTo.
func (s *Searcher) SaveIndex(w io.Writer) error {
	if _, err := s.codl.Tree().WriteTo(w); err != nil {
		return fmt.Errorf("cod: saving hierarchy: %w", err)
	}
	if _, err := s.codl.Index().WriteTo(w); err != nil {
		return fmt.Errorf("cod: saving index: %w", err)
	}
	return nil
}

// LoadSearcher reconstructs a Searcher for g from state saved by SaveIndex.
// opts must carry the same K/Theta/Beta/Model intent as the saving Searcher
// (they govern query-time behavior; the offline state is what is loaded).
func LoadSearcher(g *Graph, r io.Reader, opts Options) (*Searcher, error) {
	if g == nil || g.N() == 0 {
		return nil, fmt.Errorf("cod: empty graph")
	}
	t, err := hier.ReadTree(r)
	if err != nil {
		return nil, fmt.Errorf("cod: loading hierarchy: %w", err)
	}
	if t.N() != g.N() {
		return nil, fmt.Errorf("cod: hierarchy spans %d nodes, graph has %d", t.N(), g.N())
	}
	idx, err := core.ReadHimor(r, t)
	if err != nil {
		return nil, fmt.Errorf("cod: loading index: %w", err)
	}
	params := core.Params{K: opts.K, Theta: opts.Theta, Beta: opts.Beta, Linkage: opts.Linkage,
		Seed: opts.Seed, Model: opts.Model, Balanced: opts.Balanced, Workers: opts.Workers}
	return &Searcher{
		g:    g,
		opts: opts,
		codl: core.NewCODLWithTree(g.internalGraph(), t, idx, params),
		codu: core.NewCODUWithTree(g.internalGraph(), t, params),
		codr: core.NewCODR(g.internalGraph(), params),
	}, nil
}
