package cod

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"

	"github.com/codsearch/cod/internal/core"
	"github.com/codsearch/cod/internal/engine"
	"github.com/codsearch/cod/internal/hier"
)

// Index file format v2 ("codindx2"):
//
//	magic   [8]byte  "codindx2"
//	header  indexHeader (little-endian, fixed size)
//	hcrc    uint32   CRC-32 (IEEE) of the encoded header
//	2 sections, each:
//	  length  uint64  payload byte count
//	  crc     uint32  CRC-32 (IEEE) of the payload
//	  payload []byte  section 1 = hierarchy blob, section 2 = HIMOR blob
//
// The header carries the offline parameters the index was built with, so a
// loading process cannot silently query an index built under different
// semantics. Files beginning with the legacy hierarchy magic ("codtree1",
// written by earlier releases) are still readable; they carry no parameters
// or checksums, so they get none of v2's validation.

const indexMagic = "codindx2"

var (
	// ErrIndexVersion reports an index whose magic bytes are not a known
	// format — wrong file, or a future/corrupted header.
	ErrIndexVersion = errors.New("cod: unrecognized index format")
	// ErrIndexTruncated reports an index that ends before a declared
	// section does — a torn write or a partial copy.
	ErrIndexTruncated = errors.New("cod: truncated index")
	// ErrIndexChecksum reports a section whose CRC-32 does not match its
	// payload — bit rot or in-place corruption.
	ErrIndexChecksum = errors.New("cod: index checksum mismatch")
	// ErrIndexParams reports an index whose recorded offline parameters
	// disagree with the Options passed to LoadSearcher.
	ErrIndexParams = errors.New("cod: index parameters mismatch")
)

// indexHeader is the fixed-size v2 header. Beta is stored as IEEE-754 bits
// so the match check is exact. Nodes pins the graph the index was built for.
type indexHeader struct {
	K        int64
	Theta    int64
	BetaBits uint64
	Linkage  int32
	Model    int32
	Balanced uint8
	_        [7]byte
	Seed     uint64
	Nodes    int64
}

func headerFor(opts Options, nodes int) indexHeader {
	p := engine.Params{K: opts.K, Theta: opts.Theta, Beta: opts.Beta, Linkage: opts.Linkage,
		Seed: opts.Seed, Model: opts.Model, Balanced: opts.Balanced}.WithDefaults()
	var balanced uint8
	if p.Balanced {
		balanced = 1
	}
	return indexHeader{
		K:        int64(p.K),
		Theta:    int64(p.Theta),
		BetaBits: math.Float64bits(p.Beta),
		Linkage:  int32(p.Linkage),
		Model:    int32(p.Model),
		Balanced: balanced,
		Seed:     p.Seed,
		Nodes:    int64(nodes),
	}
}

// SaveIndex persists the Searcher's offline state (the community hierarchy
// and the HIMOR index) in format v2 so a later process can skip the offline
// phase with LoadSearcher. The file records the offline parameters and a
// CRC-32 per section, so corruption and parameter drift are caught at load
// time. The graph itself is not included; persist it separately with
// Graph.WriteTo.
func (s *Searcher) SaveIndex(w io.Writer) error {
	if _, err := io.WriteString(w, indexMagic); err != nil {
		return fmt.Errorf("cod: saving index magic: %w", err)
	}
	var hdr bytes.Buffer
	if err := binary.Write(&hdr, binary.LittleEndian, headerFor(s.opts, s.g.N())); err != nil {
		return fmt.Errorf("cod: encoding index header: %w", err)
	}
	if _, err := w.Write(hdr.Bytes()); err != nil {
		return fmt.Errorf("cod: saving index header: %w", err)
	}
	if err := binary.Write(w, binary.LittleEndian, crc32.ChecksumIEEE(hdr.Bytes())); err != nil {
		return fmt.Errorf("cod: saving header checksum: %w", err)
	}

	var blob bytes.Buffer
	if _, err := s.eng.Tree().WriteTo(&blob); err != nil {
		return fmt.Errorf("cod: encoding hierarchy: %w", err)
	}
	if err := writeSection(w, blob.Bytes()); err != nil {
		return fmt.Errorf("cod: saving hierarchy: %w", err)
	}
	blob.Reset()
	if _, err := s.eng.Index().WriteTo(&blob); err != nil {
		return fmt.Errorf("cod: encoding index: %w", err)
	}
	if err := writeSection(w, blob.Bytes()); err != nil {
		return fmt.Errorf("cod: saving index: %w", err)
	}
	return nil
}

func writeSection(w io.Writer, payload []byte) error {
	if err := binary.Write(w, binary.LittleEndian, uint64(len(payload))); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, crc32.ChecksumIEEE(payload)); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readSection reads one length-prefixed, checksummed section. Short data
// maps to ErrIndexTruncated, a CRC mismatch to ErrIndexChecksum.
func readSection(r io.Reader, name string) ([]byte, error) {
	var length uint64
	var crc uint32
	if err := binary.Read(r, binary.LittleEndian, &length); err != nil {
		return nil, fmt.Errorf("%w: %s section header: %v", ErrIndexTruncated, name, err)
	}
	if err := binary.Read(r, binary.LittleEndian, &crc); err != nil {
		return nil, fmt.Errorf("%w: %s section header: %v", ErrIndexTruncated, name, err)
	}
	// ReadAll over a LimitReader grows with the data actually present, so a
	// corrupted (huge) length cannot force a matching allocation.
	payload, err := io.ReadAll(io.LimitReader(r, int64(length)))
	if err != nil {
		return nil, fmt.Errorf("cod: reading %s section: %w", name, err)
	}
	if uint64(len(payload)) != length {
		return nil, fmt.Errorf("%w: %s section has %d of %d bytes", ErrIndexTruncated, name, len(payload), length)
	}
	if got := crc32.ChecksumIEEE(payload); got != crc {
		return nil, fmt.Errorf("%w: %s section crc %08x, want %08x", ErrIndexChecksum, name, got, crc)
	}
	return payload, nil
}

// SaveIndexAtomic writes the index to path so that a crash at any moment
// leaves either the previous file intact or the new one complete — never a
// partial file. It writes to a temporary file in path's directory, fsyncs,
// and renames over path.
func (s *Searcher) SaveIndexAtomic(path string) error {
	return writeFileAtomic(path, s.SaveIndex)
}

// writeFileAtomic streams write into a temp file next to path, fsyncs it,
// and renames it onto path. Any failure removes the temp file.
func writeFileAtomic(path string, write func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("cod: creating temp index: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = write(tmp); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("cod: syncing index: %w", err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("cod: closing index: %w", err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("cod: publishing index: %w", err)
	}
	// Sync the directory so the rename itself survives a crash. Some
	// filesystems reject fsync on directories; the rename is still atomic
	// there, so that failure is not fatal.
	if d, dErr := os.Open(dir); dErr == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// LoadSearcher reconstructs a Searcher for g from state saved by SaveIndex.
// The recorded offline parameters must match opts (both are compared after
// default-filling), sections must pass their checksums, and the hierarchy
// must span exactly g's nodes; violations surface as ErrIndexParams,
// ErrIndexChecksum / ErrIndexTruncated, and ErrIndexVersion sentinels.
// Legacy v1 files (raw hierarchy + HIMOR blobs) load without validation.
func LoadSearcher(g *Graph, r io.Reader, opts Options) (*Searcher, error) {
	if g == nil || g.N() == 0 {
		return nil, fmt.Errorf("cod: empty graph")
	}
	magic := make([]byte, 8)
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, fmt.Errorf("%w: reading magic: %v", ErrIndexTruncated, err)
	}
	switch string(magic) {
	case indexMagic:
		return loadSearcherV2(g, r, opts)
	case "codtree1":
		// Legacy v1: the stream begins directly with the hierarchy blob.
		return loadSearcherV1(g, io.MultiReader(bytes.NewReader(magic), r), opts)
	default:
		return nil, fmt.Errorf("%w: magic %q", ErrIndexVersion, magic)
	}
}

func loadSearcherV2(g *Graph, r io.Reader, opts Options) (*Searcher, error) {
	hdrBytes := make([]byte, binary.Size(indexHeader{}))
	if _, err := io.ReadFull(r, hdrBytes); err != nil {
		return nil, fmt.Errorf("%w: reading header: %v", ErrIndexTruncated, err)
	}
	var hcrc uint32
	if err := binary.Read(r, binary.LittleEndian, &hcrc); err != nil {
		return nil, fmt.Errorf("%w: reading header checksum: %v", ErrIndexTruncated, err)
	}
	if got := crc32.ChecksumIEEE(hdrBytes); got != hcrc {
		return nil, fmt.Errorf("%w: header crc %08x, want %08x", ErrIndexChecksum, got, hcrc)
	}
	var hdr indexHeader
	if err := binary.Read(bytes.NewReader(hdrBytes), binary.LittleEndian, &hdr); err != nil {
		return nil, fmt.Errorf("cod: decoding index header: %w", err)
	}
	if want := headerFor(opts, g.N()); hdr != want {
		return nil, fmt.Errorf("%w: saved {k=%d θ=%d βbits=%x linkage=%d model=%d balanced=%d seed=%d n=%d}, "+
			"requested {k=%d θ=%d βbits=%x linkage=%d model=%d balanced=%d seed=%d n=%d}",
			ErrIndexParams,
			hdr.K, hdr.Theta, hdr.BetaBits, hdr.Linkage, hdr.Model, hdr.Balanced, hdr.Seed, hdr.Nodes,
			want.K, want.Theta, want.BetaBits, want.Linkage, want.Model, want.Balanced, want.Seed, want.Nodes)
	}

	treeBlob, err := readSection(r, "hierarchy")
	if err != nil {
		return nil, err
	}
	himorBlob, err := readSection(r, "himor")
	if err != nil {
		return nil, err
	}
	t, err := hier.ReadTree(bytes.NewReader(treeBlob))
	if err != nil {
		return nil, fmt.Errorf("cod: loading hierarchy: %w", err)
	}
	if t.N() != g.N() {
		return nil, fmt.Errorf("%w: hierarchy spans %d nodes, graph has %d", ErrIndexParams, t.N(), g.N())
	}
	idx, err := core.ReadHimor(bytes.NewReader(himorBlob), t)
	if err != nil {
		return nil, fmt.Errorf("cod: loading index: %w", err)
	}
	return searcherWithState(g, t, idx, opts), nil
}

func loadSearcherV1(g *Graph, r io.Reader, opts Options) (*Searcher, error) {
	t, err := hier.ReadTree(r)
	if err != nil {
		return nil, fmt.Errorf("cod: loading hierarchy: %w", err)
	}
	if t.N() != g.N() {
		return nil, fmt.Errorf("%w: hierarchy spans %d nodes, graph has %d", ErrIndexParams, t.N(), g.N())
	}
	idx, err := core.ReadHimor(r, t)
	if err != nil {
		return nil, fmt.Errorf("cod: loading index: %w", err)
	}
	return searcherWithState(g, t, idx, opts), nil
}

func searcherWithState(g *Graph, t *hier.Tree, idx *core.Himor, opts Options) *Searcher {
	params := engine.Params{K: opts.K, Theta: opts.Theta, Beta: opts.Beta, Linkage: opts.Linkage,
		Seed: opts.Seed, Model: opts.Model, Balanced: opts.Balanced, Workers: opts.Workers}
	cfg := engine.Config{SampleCache: opts.SampleCache, CacheAttrTrees: opts.CacheHierarchies,
		Adaptive: opts.Adaptive}
	return &Searcher{
		g:    g,
		opts: opts,
		eng:  engine.New(g.internalGraph(), t, idx, params, cfg),
	}
}
