package cod

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/codsearch/cod/internal/faultfs"
)

func TestSaveLoadIndexRoundTrip(t *testing.T) {
	g := buildTestGraph(t)
	opts := Options{K: 3, Theta: 5, Seed: 21}
	s1, err := NewSearcher(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s1.SaveIndex(&buf); err != nil {
		t.Fatal(err)
	}
	s2, err := LoadSearcher(g, &buf, opts)
	if err != nil {
		t.Fatal(err)
	}

	// The loaded searcher must expose identical index state...
	if s1.IndexBytes() != s2.IndexBytes() {
		t.Errorf("index size changed: %d vs %d", s1.IndexBytes(), s2.IndexBytes())
	}
	for q := NodeID(0); int(q) < g.N(); q++ {
		d1, _ := s1.HierarchyDepth(q)
		d2, _ := s2.HierarchyDepth(q)
		if d1 != d2 {
			t.Fatalf("hierarchy depth differs for %d: %d vs %d", q, d1, d2)
		}
		for i := 0; i < d1; i++ {
			r1, sz1, _ := s1.InfluenceRank(q, i)
			r2, sz2, _ := s2.InfluenceRank(q, i)
			if r1 != r2 || sz1 != sz2 {
				t.Fatalf("rank differs for node %d level %d: (%d,%d) vs (%d,%d)", q, i, r1, sz1, r2, sz2)
			}
		}
	}

	// ...and answer queries identically for identical seeds.
	q := NodeID(0)
	attr := g.Attrs(q)[0]
	c1, err := s1.Discover(q, attr)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := s2.Discover(q, attr)
	if err != nil {
		t.Fatal(err)
	}
	if c1.Found != c2.Found || c1.Size() != c2.Size() {
		t.Errorf("answers differ after reload: %+v vs %+v", c1, c2)
	}
}

func TestLoadSearcherRejectsCorruption(t *testing.T) {
	g := buildTestGraph(t)
	s, err := NewSearcher(g, Options{Theta: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.SaveIndex(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// truncated
	if _, err := LoadSearcher(g, bytes.NewReader(raw[:len(raw)/2]), Options{}); err == nil {
		t.Error("truncated index accepted")
	}
	// bad magic
	bad := append([]byte(nil), raw...)
	bad[0] ^= 0xff
	if _, err := LoadSearcher(g, bytes.NewReader(bad), Options{}); err == nil {
		t.Error("corrupted magic accepted")
	}
	// wrong graph
	other, err := GenerateDataset("small", 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSearcher(other, bytes.NewReader(raw), Options{}); err == nil {
		t.Error("index for a different graph accepted")
	}
	// empty graph
	if _, err := LoadSearcher(nil, bytes.NewReader(raw), Options{}); err == nil {
		t.Error("nil graph accepted")
	}
}

// savedIndex builds a small searcher once and returns it with its serialized
// index, shared across the typed-error tests below.
func savedIndex(t *testing.T) (*Graph, *Searcher, Options, []byte) {
	t.Helper()
	g := buildTestGraph(t)
	opts := Options{K: 3, Theta: 4, Seed: 11}
	s, err := NewSearcher(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.SaveIndex(&buf); err != nil {
		t.Fatal(err)
	}
	return g, s, opts, buf.Bytes()
}

func TestLoadSearcherTypedErrors(t *testing.T) {
	g, _, opts, raw := savedIndex(t)

	t.Run("version", func(t *testing.T) {
		bad := append([]byte(nil), raw...)
		bad[3] ^= 0x20
		if _, err := LoadSearcher(g, bytes.NewReader(bad), opts); !errors.Is(err, ErrIndexVersion) {
			t.Errorf("bad magic: err = %v, want ErrIndexVersion", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		// Every truncation point must produce ErrIndexTruncated (never a
		// checksum error or silent success): header, section header, and
		// mid-payload cuts.
		for _, n := range []int{0, 4, 20, 70, len(raw) / 2, len(raw) - 1} {
			r := &faultfs.TruncateReader{R: bytes.NewReader(raw), N: int64(n)}
			if _, err := LoadSearcher(g, r, opts); !errors.Is(err, ErrIndexTruncated) {
				t.Errorf("truncated at %d: err = %v, want ErrIndexTruncated", n, err)
			}
		}
	})
	t.Run("bitflip", func(t *testing.T) {
		// A flip anywhere after the magic must be caught by a CRC — in the
		// header or in either section payload.
		for _, off := range []int64{9, 40, 80, int64(len(raw)) - 2} {
			r := &faultfs.FlipReader{R: bytes.NewReader(raw), Offset: off}
			if _, err := LoadSearcher(g, r, opts); !errors.Is(err, ErrIndexChecksum) {
				t.Errorf("bit flip at %d: err = %v, want ErrIndexChecksum", off, err)
			}
		}
	})
	t.Run("params", func(t *testing.T) {
		cases := []Options{
			{K: 4, Theta: 4, Seed: 11}, // different K
			{K: 3, Theta: 4, Seed: 12}, // different seed
			{K: 3, Theta: 4, Seed: 11, Model: ModelLT},
			{K: 3, Theta: 4, Seed: 11, Linkage: Single},
			{K: 3, Theta: 4, Seed: 11, Beta: 2},
		}
		for _, o := range cases {
			if _, err := LoadSearcher(g, bytes.NewReader(raw), o); !errors.Is(err, ErrIndexParams) {
				t.Errorf("options %+v: err = %v, want ErrIndexParams", o, err)
			}
		}
		// Defaults-filled options are the same parameters: the zero Beta
		// normalizes to the recorded 1.
		if _, err := LoadSearcher(g, bytes.NewReader(raw), Options{K: 3, Theta: 4, Seed: 11, Beta: 1}); err != nil {
			t.Errorf("normalized-equal options rejected: %v", err)
		}
	})
	t.Run("read error", func(t *testing.T) {
		r := &faultfs.ErrReader{R: bytes.NewReader(raw), FailAfter: 100}
		if _, err := LoadSearcher(g, r, opts); !errors.Is(err, faultfs.ErrInjected) {
			t.Errorf("injected read error not surfaced: %v", err)
		}
	})
}

func TestSaveIndexWriteFailures(t *testing.T) {
	_, s, _, raw := savedIndex(t)
	// A write failure at any offset must surface; exhaustive small offsets
	// cover the magic, header, and both section paths.
	for _, n := range []int64{0, 4, 30, 70, int64(len(raw)) / 2} {
		var buf bytes.Buffer
		w := &faultfs.ErrWriter{W: &buf, FailAfter: n}
		if err := s.SaveIndex(w); !errors.Is(err, faultfs.ErrInjected) {
			t.Errorf("FailAfter=%d: err = %v, want ErrInjected", n, err)
		}
	}
	var buf bytes.Buffer
	if err := s.SaveIndex(&faultfs.ShortWriter{W: &buf, Max: 3}); err == nil {
		t.Error("short writes reported no error")
	}
}

func TestLegacyV1IndexStillLoads(t *testing.T) {
	g, s, opts, _ := savedIndex(t)
	// Emit the pre-v2 layout: raw hierarchy blob followed by the HIMOR blob,
	// no header and no checksums.
	var v1 bytes.Buffer
	if _, err := s.eng.Tree().WriteTo(&v1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.eng.Index().WriteTo(&v1); err != nil {
		t.Fatal(err)
	}
	s2, err := LoadSearcher(g, bytes.NewReader(v1.Bytes()), opts)
	if err != nil {
		t.Fatalf("legacy v1 index rejected: %v", err)
	}
	if s.IndexBytes() != s2.IndexBytes() {
		t.Errorf("legacy load changed index size: %d vs %d", s.IndexBytes(), s2.IndexBytes())
	}
	q := NodeID(0)
	c1, err1 := s.Discover(q, g.Attrs(q)[0])
	c2, err2 := s2.Discover(q, g.Attrs(q)[0])
	if err1 != nil || err2 != nil {
		t.Fatalf("discover errors: %v / %v", err1, err2)
	}
	if c1.Found != c2.Found || c1.Size() != c2.Size() {
		t.Errorf("legacy-loaded searcher answers differently: %+v vs %+v", c1, c2)
	}
}

func TestSaveIndexAtomic(t *testing.T) {
	g, s, opts, _ := savedIndex(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "index.cod")
	if err := s.SaveIndexAtomic(path); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := LoadSearcher(g, f, opts); err != nil {
		t.Fatalf("atomic save produced unloadable index: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "index.cod" {
		t.Errorf("directory not clean after atomic save: %v", entries)
	}

	// Overwrite an existing good file with a failing write: the original
	// must survive untouched and no temp file may remain.
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	failed := writeFileAtomic(path, func(w io.Writer) error {
		ew := &faultfs.ErrWriter{W: w, FailAfter: 64}
		if err := s.SaveIndex(ew); err != nil {
			return err
		}
		return nil
	})
	if !errors.Is(failed, faultfs.ErrInjected) {
		t.Fatalf("injected failure not surfaced: %v", failed)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Error("failed atomic save modified the published file")
	}
	entries, err = os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Errorf("failed atomic save left temp file %s", e.Name())
		}
	}
}
