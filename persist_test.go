package cod

import (
	"bytes"
	"testing"
)

func TestSaveLoadIndexRoundTrip(t *testing.T) {
	g := buildTestGraph(t)
	opts := Options{K: 3, Theta: 5, Seed: 21}
	s1, err := NewSearcher(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s1.SaveIndex(&buf); err != nil {
		t.Fatal(err)
	}
	s2, err := LoadSearcher(g, &buf, opts)
	if err != nil {
		t.Fatal(err)
	}

	// The loaded searcher must expose identical index state...
	if s1.IndexBytes() != s2.IndexBytes() {
		t.Errorf("index size changed: %d vs %d", s1.IndexBytes(), s2.IndexBytes())
	}
	for q := NodeID(0); int(q) < g.N(); q++ {
		d1, _ := s1.HierarchyDepth(q)
		d2, _ := s2.HierarchyDepth(q)
		if d1 != d2 {
			t.Fatalf("hierarchy depth differs for %d: %d vs %d", q, d1, d2)
		}
		for i := 0; i < d1; i++ {
			r1, sz1, _ := s1.InfluenceRank(q, i)
			r2, sz2, _ := s2.InfluenceRank(q, i)
			if r1 != r2 || sz1 != sz2 {
				t.Fatalf("rank differs for node %d level %d: (%d,%d) vs (%d,%d)", q, i, r1, sz1, r2, sz2)
			}
		}
	}

	// ...and answer queries identically for identical seeds.
	q := NodeID(0)
	attr := g.Attrs(q)[0]
	c1, err := s1.Discover(q, attr)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := s2.Discover(q, attr)
	if err != nil {
		t.Fatal(err)
	}
	if c1.Found != c2.Found || c1.Size() != c2.Size() {
		t.Errorf("answers differ after reload: %+v vs %+v", c1, c2)
	}
}

func TestLoadSearcherRejectsCorruption(t *testing.T) {
	g := buildTestGraph(t)
	s, err := NewSearcher(g, Options{Theta: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.SaveIndex(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// truncated
	if _, err := LoadSearcher(g, bytes.NewReader(raw[:len(raw)/2]), Options{}); err == nil {
		t.Error("truncated index accepted")
	}
	// bad magic
	bad := append([]byte(nil), raw...)
	bad[0] ^= 0xff
	if _, err := LoadSearcher(g, bytes.NewReader(bad), Options{}); err == nil {
		t.Error("corrupted magic accepted")
	}
	// wrong graph
	other, err := GenerateDataset("small", 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSearcher(other, bytes.NewReader(raw), Options{}); err == nil {
		t.Error("index for a different graph accepted")
	}
	// empty graph
	if _, err := LoadSearcher(nil, bytes.NewReader(raw), Options{}); err == nil {
		t.Error("nil graph accepted")
	}
}
