package cod

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"github.com/codsearch/cod/internal/engine"
	"github.com/codsearch/cod/internal/graph"
	"github.com/codsearch/cod/internal/query"
)

// ParseError is a positioned query-expression error. Error() reports the
// byte offset; Caret() renders the expression with a caret under the
// offending token. HTTP front ends map it to a 400 with both.
type ParseError = query.ParseError

// ErrUnsatisfiable is wrapped by Prepare when the expression's predicate is
// a contradiction no node can satisfy (e.g. "ML AND NOT ML").
var ErrUnsatisfiable = query.ErrUnsatisfiable

// PreparedQuery is a parsed, resolved and normalized query expression bound
// to a Searcher: parse once, discover many times. Preparation is pure — it
// consumes no query seed — so preparing an expression never perturbs the
// Searcher's deterministic query sequence.
//
// Expression language (see also the README's query-language section):
//
//	ML AND (ICDE OR KDD) AND size>=20 AND k=7
//
// Attributes are referenced by registered name (case-insensitive; see
// Graph.SetAttrNames) or numeric id, combined with AND/OR/NOT (&,|,!) and
// parentheses. Top-level conjuncts may also be community filters
// (size/density/conductance against a threshold) and execution knobs
// (node=, k=, variant=codl|codu|codr|codl-, adaptive=, eps=, delta=).
// Semantically equal predicates normalize to one canonical form — and one
// sample-cache key — however they are spelled.
type PreparedQuery struct {
	s        *Searcher
	variant  engine.Variant
	attr     AttrID     // lowered single-attribute target (pred == nil)
	pred     *query.DNF // compound predicate, nil when lowered
	filters  []query.Filter
	k        int
	adaptive *engine.Adaptive
	node     NodeID
	hasNode  bool
	expr     string // canonical serialization
}

// Prepare parses, resolves and normalizes a query expression against the
// Searcher's graph. Errors are *ParseError values positioned in the input
// (syntax, unknown or out-of-range attributes, misplaced filters/knobs),
// or wrap ErrUnsatisfiable for contradictory predicates.
func (s *Searcher) Prepare(expr string) (*PreparedQuery, error) {
	p, err := query.Parse(expr)
	if err != nil {
		return nil, err
	}
	var lookup func(string) (graph.AttrID, bool)
	if s.g.names != nil {
		lookup = s.g.AttrByName
	}
	if err := p.Resolve(lookup, s.g.NumAttrs()); err != nil {
		return nil, err
	}

	pq := &PreparedQuery{s: s, variant: engine.VariantCODL, k: p.Knobs.K}
	switch strings.ToLower(p.Knobs.Variant) {
	case "", "codl":
		pq.variant = engine.VariantCODL
	case "codu":
		pq.variant = engine.VariantCODU
	case "codr":
		pq.variant = engine.VariantCODR
	case "codl-":
		pq.variant = engine.VariantCODLNoIndex
	default:
		// Parse validates the variant value; this guards future drift.
		return nil, fmt.Errorf("cod: unknown variant %q", p.Knobs.Variant)
	}

	if p.Pred != nil {
		d, err := query.Normalize(p.Pred)
		if err != nil {
			return nil, err
		}
		if pq.variant == engine.VariantCODU {
			return nil, fmt.Errorf("cod: variant codu ignores attributes; drop the predicate or pick codl/codr/codl-")
		}
		// Single positive literals lower to the legacy single-attribute query
		// here (not just in the engine) so validation, error shapes and cache
		// keys match the legacy entrypoints exactly.
		if a, ok := d.Single(); ok {
			pq.attr = a
		} else {
			pq.pred = d
		}
	} else if pq.variant != engine.VariantCODU {
		return nil, fmt.Errorf("cod: variant %s needs an attribute predicate (use variant=codu for attribute-free discovery)", pq.variant)
	}

	pq.filters = append([]query.Filter(nil), p.Filters...)
	query.SortFilters(pq.filters)
	if p.Knobs.HasNode {
		pq.node, pq.hasNode = NodeID(p.Knobs.Node), true
	}
	if p.Knobs.HasAdaptive || p.Knobs.Eps > 0 || p.Knobs.Delta > 0 {
		enabled := true
		if p.Knobs.HasAdaptive {
			enabled = p.Knobs.Adaptive
		}
		pq.adaptive = &engine.Adaptive{Enabled: enabled, Eps: p.Knobs.Eps, Delta: p.Knobs.Delta}
	}
	pq.expr = pq.render()
	return pq, nil
}

// render builds the canonical serialization: the normalized predicate
// (parenthesized when disjunctive, so the string re-parses), then sorted
// filters, then set knobs, joined as top-level conjuncts. Two expressions
// with equal semantics render identically.
func (pq *PreparedQuery) render() string {
	var parts []string
	switch {
	case pq.pred != nil && pq.pred.NumClauses() > 1:
		parts = append(parts, "("+pq.pred.String()+")")
	case pq.pred != nil:
		parts = append(parts, pq.pred.String())
	case pq.variant != engine.VariantCODU:
		parts = append(parts, strconv.Itoa(int(pq.attr)))
	}
	for _, f := range pq.filters {
		parts = append(parts, f.String())
	}
	if pq.hasNode {
		parts = append(parts, fmt.Sprintf("node=%d", pq.node))
	}
	if pq.k > 0 {
		parts = append(parts, fmt.Sprintf("k=%d", pq.k))
	}
	if pq.variant != engine.VariantCODL {
		parts = append(parts, "variant="+strings.ToLower(pq.variant.String()))
	}
	if ad := pq.adaptive; ad != nil {
		parts = append(parts, fmt.Sprintf("adaptive=%t", ad.Enabled))
		if ad.Eps > 0 {
			parts = append(parts, "eps="+strconv.FormatFloat(ad.Eps, 'g', -1, 64))
		}
		if ad.Delta > 0 {
			parts = append(parts, "delta="+strconv.FormatFloat(ad.Delta, 'g', -1, 64))
		}
	}
	return strings.Join(parts, " and ")
}

// Expr returns the canonical serialization of the prepared query:
// normalized predicate, sorted filters, then knobs. Semantically equal
// expressions share it, and re-preparing it yields the same query.
func (pq *PreparedQuery) Expr() string { return pq.expr }

// Variant returns the pipeline the query selects (CODL unless overridden
// with variant=).
func (pq *PreparedQuery) Variant() string { return pq.variant.String() }

// Node returns the node= knob's value, false when the expression carries
// none (the node then comes from the Discover call).
func (pq *PreparedQuery) Node() (NodeID, bool) { return pq.node, pq.hasNode }

// PredicateHash returns the 16-hex canonical hash of the compound
// predicate, "" for single-attribute (or attribute-free) queries. Queries
// with equal hashes share sample pools and reclustered hierarchies.
func (pq *PreparedQuery) PredicateHash() string {
	if pq.pred == nil {
		return ""
	}
	return pq.pred.Hash()
}

// PredKey returns the query's predicate aggregation key — the stable
// identity query-event digests group by: the 16-hex canonical hash for
// compound predicates, "attr:<id>" for lowered single-attribute queries
// (matching what the legacy entrypoints would report), and "none" for
// attribute-free (codu) queries.
func (pq *PreparedQuery) PredKey() string {
	switch {
	case pq.pred != nil:
		return pq.pred.Hash()
	case pq.variant == engine.VariantCODU:
		return "none"
	default:
		return "attr:" + strconv.Itoa(int(pq.attr))
	}
}

// spec assembles the engine spec for a query against node q.
func (pq *PreparedQuery) spec(q NodeID) engine.Spec {
	return engine.Spec{Variant: pq.variant, Q: q, Attr: pq.attr, Pred: pq.pred,
		Filters: pq.filters, K: pq.k, Adaptive: pq.adaptive}
}

// DiscoverCtx answers the prepared query for node q (overridden by the
// expression's node= knob when present), with the same cancellation and
// determinism contract as Searcher.DiscoverCtx. A prepared single-attribute
// query with no filters or knobs is byte-identical — trace IDs included —
// to the legacy entrypoint of its variant.
func (pq *PreparedQuery) DiscoverCtx(ctx context.Context, q NodeID) (Community, error) {
	if pq.hasNode {
		q = pq.node
	}
	return pq.s.discoverSpec(ctx, pq.spec(q), pq.attr)
}

// Discover is DiscoverCtx without cancellation.
func (pq *PreparedQuery) Discover(q NodeID) (Community, error) {
	return pq.DiscoverCtx(context.Background(), q)
}

// DiscoverQuery answers one Query: with an Expr it parses and runs the
// expression (Node supplies the query node unless a node= knob overrides
// it, and Attr is ignored — the expression's predicate replaces it); with
// an empty Expr it is exactly DiscoverCtx(q.Node, q.Attr), byte-identical
// to the legacy path.
func (s *Searcher) DiscoverQuery(ctx context.Context, q Query) (Community, error) {
	if q.Expr == "" {
		return s.DiscoverCtx(ctx, q.Node, q.Attr)
	}
	pq, err := s.Prepare(q.Expr)
	if err != nil {
		return Community{}, err
	}
	return pq.DiscoverCtx(ctx, q.Node)
}
