package cod

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"github.com/codsearch/cod/internal/obs"
)

// This file locks the PR-9 query-DSL facade: expression parsing through
// Prepare, byte-identical lowering of single-attribute expressions onto the
// legacy entrypoints (trace IDs included), compound predicates, community
// filters, knobs, attribute names, and the typed range errors.

// TestDiscoverQueryByteIdenticalToLegacy is the §17 determinism lock: a
// single-attribute DSL query must replay the legacy entrypoint byte for
// byte — community and trace ID — for every variant.
func TestDiscoverQueryByteIdenticalToLegacy(t *testing.T) {
	g := buildTestGraph(t)
	queries := determinismQueries(g)
	if len(queries) == 0 {
		t.Fatal("no attributed query nodes in test graph")
	}
	opts := Options{K: 3, Theta: 4, Seed: 97}
	cases := []struct {
		name   string
		expr   func(q Query) string
		legacy func(s *Searcher, ctx context.Context, q Query) (Community, error)
	}{
		{"codl", func(q Query) string { return fmt.Sprintf("%d", q.Attr) },
			func(s *Searcher, ctx context.Context, q Query) (Community, error) {
				return s.DiscoverCtx(ctx, q.Node, q.Attr)
			}},
		{"codu", func(q Query) string { return "variant=codu" },
			func(s *Searcher, ctx context.Context, q Query) (Community, error) {
				return s.DiscoverUnattributedCtx(ctx, q.Node)
			}},
		{"codr", func(q Query) string { return fmt.Sprintf("%d and variant=codr", q.Attr) },
			func(s *Searcher, ctx context.Context, q Query) (Community, error) {
				return s.DiscoverGlobalCtx(ctx, q.Node, q.Attr)
			}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s1, err := NewSearcher(g, opts)
			if err != nil {
				t.Fatal(err)
			}
			s2, err := NewSearcher(g, opts)
			if err != nil {
				t.Fatal(err)
			}
			for _, q := range queries {
				tr1, tr2 := obs.NewTrace(), obs.NewTrace()
				ctx1 := obs.WithRecorder(context.Background(), obs.NewRecorder(nil, tr1))
				ctx2 := obs.WithRecorder(context.Background(), obs.NewRecorder(nil, tr2))
				want, err1 := tc.legacy(s1, ctx1, q)
				got, err2 := s2.DiscoverQuery(ctx2, Query{Node: q.Node, Expr: tc.expr(q)})
				if err1 != nil || err2 != nil {
					t.Fatalf("query %+v errored: %v / %v", q, err1, err2)
				}
				if fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", want) {
					t.Errorf("query %+v: DSL %+v differs from legacy %+v", q, got, want)
				}
				if tr1.ID() != tr2.ID() {
					t.Errorf("query %+v: DSL trace ID %s differs from legacy %s", q, tr2.ID(), tr1.ID())
				}
			}
		})
	}
}

// TestDiscoverQueryEmptyExprIsLegacy: Query{Expr: ""} routes through the
// legacy attribute path untouched.
func TestDiscoverQueryEmptyExprIsLegacy(t *testing.T) {
	g := buildTestGraph(t)
	opts := Options{K: 3, Theta: 4, Seed: 97}
	s1, err := NewSearcher(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewSearcher(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range determinismQueries(g) {
		want, err1 := s1.Discover(q.Node, q.Attr)
		got, err2 := s2.DiscoverQuery(context.Background(), q)
		if err1 != nil || err2 != nil {
			t.Fatalf("query %+v errored: %v / %v", q, err1, err2)
		}
		if fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", want) {
			t.Errorf("query %+v: empty-expr %+v differs from legacy %+v", q, got, want)
		}
	}
}

// TestPrepareCanonicalExpr: semantically equal expressions — reordered,
// respelled, renamed — prepare to one canonical serialization and one
// predicate hash, and the canonical form re-prepares to itself.
func TestPrepareCanonicalExpr(t *testing.T) {
	g := buildTestGraph(t) // tiny: ML, DB, IR, AI
	s, err := NewSearcher(g, Options{K: 3, Theta: 4, Seed: 97})
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.Prepare("ML AND (IR OR DB) AND size>=2 AND k=2")
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Prepare("k=2 and size>=2 and (db | 2) & ml")
	if err != nil {
		t.Fatal(err)
	}
	if a.Expr() != b.Expr() {
		t.Errorf("equivalent expressions canonicalize differently:\n a: %s\n b: %s", a.Expr(), b.Expr())
	}
	if a.PredicateHash() == "" || a.PredicateHash() != b.PredicateHash() {
		t.Errorf("predicate hashes differ: %q vs %q", a.PredicateHash(), b.PredicateHash())
	}
	c, err := s.Prepare(a.Expr())
	if err != nil {
		t.Fatalf("canonical form %q does not re-prepare: %v", a.Expr(), err)
	}
	if c.Expr() != a.Expr() {
		t.Errorf("canonical form is not a fixed point: %q re-prepares to %q", a.Expr(), c.Expr())
	}
	// A single positive literal lowers onto the legacy attribute; no hash.
	one, err := s.Prepare("ml")
	if err != nil {
		t.Fatal(err)
	}
	if one.PredicateHash() != "" {
		t.Errorf("single-literal query has predicate hash %q, want lowered", one.PredicateHash())
	}
}

// TestPrepareErrors: every rejection is typed and positioned.
func TestPrepareErrors(t *testing.T) {
	g := buildTestGraph(t)
	s, err := NewSearcher(g, Options{K: 3, Theta: 4, Seed: 97})
	if err != nil {
		t.Fatal(err)
	}
	parseErrs := []string{
		"ML AND",               // dangling operator
		"Quantum",              // unknown attribute name
		"99",                   // numeric attribute out of range
		"ML OR size>=3",        // filter under OR
		"variant=bogus",        // unknown variant
		"size>=3 and ML or DB", // OR over a filtered conjunct
	}
	for _, expr := range parseErrs {
		_, err := s.Prepare(expr)
		var pe *ParseError
		if !errors.As(err, &pe) {
			t.Errorf("Prepare(%q) error = %v, want *ParseError", expr, err)
			continue
		}
		if pe.Caret() == "" {
			t.Errorf("Prepare(%q): empty caret rendering", expr)
		}
	}
	if _, err := s.Prepare("ML AND NOT ML"); !errors.Is(err, ErrUnsatisfiable) {
		t.Errorf("contradiction error = %v, want ErrUnsatisfiable", err)
	}
	if _, err := s.Prepare("ML and variant=codu"); err == nil ||
		!strings.Contains(err.Error(), "codu") {
		t.Errorf("codu+predicate error = %v, want a codu explanation", err)
	}
	if _, err := s.Prepare("size>=3"); err == nil ||
		!strings.Contains(err.Error(), "predicate") {
		t.Errorf("predicate-less codl error = %v, want a needs-predicate explanation", err)
	}
}

// TestRangeErrorReportsKnownAttributes: satellite 1 — the typed range error
// keeps the legacy message prefix and lists the attribute registry.
func TestRangeErrorReportsKnownAttributes(t *testing.T) {
	g := buildTestGraph(t)
	s, err := NewSearcher(g, Options{K: 3, Theta: 4, Seed: 97})
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Discover(0, 99)
	var re *RangeError
	if !errors.As(err, &re) {
		t.Fatalf("Discover(0, 99) error = %T, want *RangeError", err)
	}
	if re.What != "attribute" || re.Value != 99 || re.N != g.NumAttrs() {
		t.Errorf("range error fields %+v", re)
	}
	if len(re.Known) != g.NumAttrs() || re.Known[0] != "ML" {
		t.Errorf("range error Known = %v, want the registry", re.Known)
	}
	if !strings.HasPrefix(err.Error(), "cod: attribute 99 out of range [0,4)") {
		t.Errorf("range error message %q lost the legacy prefix", err)
	}
	if !strings.Contains(err.Error(), "ML") {
		t.Errorf("range error message %q does not name known attributes", err)
	}
	// Node errors carry no attribute registry.
	_, err = s.Discover(-1, 0)
	if !errors.As(err, &re) || re.What != "query node" || re.Known != nil {
		t.Errorf("node range error = %v (%+v)", err, re)
	}
}

// TestGraphAttrNames: the registry resolves case-insensitively and rejects
// malformed installs.
func TestGraphAttrNames(t *testing.T) {
	g := buildTestGraph(t)
	names := g.AttrNames()
	if len(names) != 4 || names[0] != "ML" {
		t.Fatalf("tiny dataset attr names = %v", names)
	}
	if a, ok := g.AttrByName("db"); !ok || a != 1 {
		t.Errorf("AttrByName(db) = %d, %t", a, ok)
	}
	if name, ok := g.AttrName(2); !ok || name != "IR" {
		t.Errorf("AttrName(2) = %q, %t", name, ok)
	}
	if _, ok := g.AttrName(99); ok {
		t.Error("AttrName(99) resolved")
	}
	b := NewGraphBuilder(2, 2)
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	plain := b.Build()
	if plain.AttrNames() != nil {
		t.Error("fresh graph has attribute names")
	}
	if err := plain.SetAttrNames("one"); err == nil {
		t.Error("SetAttrNames accepted a short registry")
	}
	if err := plain.SetAttrNames("A", "a"); err == nil {
		t.Error("SetAttrNames accepted case-colliding names")
	}
	if err := plain.SetAttrNames("A", ""); err == nil {
		t.Error("SetAttrNames accepted an empty name")
	}
	if err := plain.SetAttrNames("A", "B"); err != nil {
		t.Fatal(err)
	}
}

// TestDiscoverQueryCompound: a compound filtered query answers
// deterministically and its community honors the filters; the node= knob
// overrides the call-site node.
func TestDiscoverQueryCompound(t *testing.T) {
	g := buildTestGraph(t)
	opts := Options{K: 3, Theta: 4, Seed: 97}
	s1, err := NewSearcher(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewSearcher(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	expr := "(ML or DB) and size>=3"
	found := 0
	for _, q := range determinismQueries(g) {
		a, err := s1.DiscoverQuery(context.Background(), Query{Node: q.Node, Expr: expr})
		if err != nil {
			t.Fatal(err)
		}
		b, err := s2.DiscoverQuery(context.Background(), Query{Node: q.Node, Expr: expr})
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
			t.Errorf("query %d: compound run not deterministic:\n%+v\n%+v", q.Node, a, b)
		}
		if a.Found {
			found++
			if a.Size() < 3 {
				t.Errorf("query %d: size>=3 violated: %d nodes", q.Node, a.Size())
			}
			if a.Rank < 1 || a.Rank > opts.K {
				t.Errorf("query %d: rank %d outside [1,%d]", q.Node, a.Rank, opts.K)
			}
		}
	}
	if found == 0 {
		t.Error("no compound query found a community")
	}

	// node= knob: the expression pins the query node regardless of call site.
	q0 := determinismQueries(g)[0].Node
	s3, err := NewSearcher(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	s4, err := NewSearcher(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := s3.DiscoverQuery(context.Background(), Query{Node: q0, Expr: "ML"})
	if err != nil {
		t.Fatal(err)
	}
	got, err := s4.DiscoverQuery(context.Background(),
		Query{Node: 0, Expr: fmt.Sprintf("ML and node=%d", q0)})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", want) {
		t.Errorf("node= knob override differs: %+v vs %+v", got, want)
	}
}

// TestDiscoverBatchExpr: expression entries in a batch lower onto the same
// plans as their legacy spellings (byte-identical results), and malformed
// expressions reject per entry as positioned parse errors.
func TestDiscoverBatchExpr(t *testing.T) {
	g := buildTestGraph(t)
	s, err := NewSearcher(g, Options{K: 3, Theta: 4, Seed: 97})
	if err != nil {
		t.Fatal(err)
	}
	legacy := determinismQueries(g)
	viaExpr := make([]Query, len(legacy))
	for i, q := range legacy {
		viaExpr[i] = Query{Node: q.Node, Expr: fmt.Sprintf("%d", q.Attr)}
	}
	want := batchBytes(s.DiscoverBatch(legacy, 4))
	got := batchBytes(s.DiscoverBatch(viaExpr, 4))
	// The echoed Query field differs by construction; compare communities.
	strip := func(s string) string {
		var out []string
		for _, line := range strings.Split(s, "\n") {
			if i := strings.Index(line, "found="); i >= 0 {
				out = append(out, line[i:])
			}
		}
		return strings.Join(out, "\n")
	}
	if strip(got) != strip(want) {
		t.Errorf("expression batch differs from legacy batch:\n--- legacy\n%s--- expr\n%s", want, got)
	}

	res := s.DiscoverBatch([]Query{
		{Node: legacy[0].Node, Expr: "ML AND"},
		{Node: legacy[0].Node, Expr: "(ML or DB) and size>=3"},
	}, 2)
	var pe *ParseError
	if !errors.As(res[0].Err, &pe) {
		t.Errorf("batch parse error = %v, want *ParseError", res[0].Err)
	}
	if res[1].Err != nil {
		t.Errorf("valid batch expression errored: %v", res[1].Err)
	}
}
