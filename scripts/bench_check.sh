#!/bin/sh
# Runs the Fig-series benchmarks once each (-benchtime=1x -count=3), turns
# the output into a machine-readable JSON report via codbench -parse-bench,
# and validates it with codbench -check-bench. When a baseline report is
# present, the fresh report is also diffed against it (-compare-bench):
# ns/op and allocs/op are aggregated by min across the -count runs and a
# >25% regression on a shared benchmark fails the script. Benchmarks only
# in one report are printed as notes. Otherwise this stays a
# well-formedness gate — it fails loudly when the benchmarks stop
# producing parseable output.
#
#   scripts/bench_check.sh [out.json] [baseline.json]
#   # defaults: BENCH_pr10.json vs baseline BENCH_pr9.json (skipped if absent)
#
# Run via `make bench-check`; needs only the go toolchain.
set -eu

out="${1:-BENCH_pr10.json}"
baseline="${2:-BENCH_pr9.json}"
workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

fail() {
    echo "bench-check: FAIL: $*" >&2
    if [ -f "$workdir/bench.out" ]; then
        echo "--- bench output (tail) ---" >&2
        tail -n 40 "$workdir/bench.out" >&2
    fi
    exit 1
}

echo "bench-check: building codbench"
go build -o "$workdir/codbench" ./cmd/codbench || fail "codbench does not build"

echo "bench-check: running Fig + engine benchmarks (-benchtime=1x -count=3)"
go test -run '^$' -bench 'BenchmarkFig|BenchmarkCODLQuery|BenchmarkDiscoverBatch' \
    -benchtime=1x -count=3 -benchmem . \
    >"$workdir/bench.out" 2>&1 || fail "go test -bench exited nonzero"

grep -q '^Benchmark' "$workdir/bench.out" || fail "no benchmark lines in output"

echo "bench-check: writing $out"
"$workdir/codbench" -parse-bench -bench-out "$out" <"$workdir/bench.out" \
    || fail "parse-bench rejected the output"

if [ -f "$baseline" ] && [ "$baseline" != "$out" ]; then
    echo "bench-check: comparing against baseline $baseline"
    "$workdir/codbench" -check-bench "$out" -compare-bench "$baseline" \
        || fail "check/compare vs $baseline rejected $out"
else
    "$workdir/codbench" -check-bench "$out" || fail "check-bench rejected $out"
    [ "$baseline" = "$out" ] || echo "bench-check: no baseline $baseline; skipping comparison"
fi

runs=$(grep -c '"name"' "$out")
echo "bench-check: PASS ($runs benchmark runs in $out)"
