#!/bin/sh
# Runs the Fig-series benchmarks once each (-benchtime=1x -count=3), turns
# the output into a machine-readable JSON report via codbench -parse-bench,
# and validates it with codbench -check-bench. This is a well-formedness
# gate for the bench pipeline — it fails loudly when the benchmarks stop
# producing parseable output — not a performance-threshold gate.
#
#   scripts/bench_check.sh [out.json]    # default BENCH_pr4.json
#
# Run via `make bench-check`; needs only the go toolchain.
set -eu

out="${1:-BENCH_pr4.json}"
workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

fail() {
    echo "bench-check: FAIL: $*" >&2
    if [ -f "$workdir/bench.out" ]; then
        echo "--- bench output (tail) ---" >&2
        tail -n 40 "$workdir/bench.out" >&2
    fi
    exit 1
}

echo "bench-check: building codbench"
go build -o "$workdir/codbench" ./cmd/codbench || fail "codbench does not build"

echo "bench-check: running Fig + engine benchmarks (-benchtime=1x -count=3)"
go test -run '^$' -bench 'BenchmarkFig|BenchmarkCODLQuery|BenchmarkDiscoverBatch' \
    -benchtime=1x -count=3 -benchmem . \
    >"$workdir/bench.out" 2>&1 || fail "go test -bench exited nonzero"

grep -q '^Benchmark' "$workdir/bench.out" || fail "no benchmark lines in output"

echo "bench-check: writing $out"
"$workdir/codbench" -parse-bench -bench-out "$out" <"$workdir/bench.out" \
    || fail "parse-bench rejected the output"

"$workdir/codbench" -check-bench "$out" || fail "check-bench rejected $out"

runs=$(grep -c '"name"' "$out")
echo "bench-check: PASS ($runs benchmark runs in $out)"
