#!/bin/sh
# Per-package coverage floors for the contract-bearing packages: the
# accuracy harness and the influence sampling layer carry the bounded-error
# evaluation contract (DESIGN.md §16), the query package carries the
# parsing and normal-form contract (DESIGN.md §17), and the eventlog
# package plus the codlog CLI carry the query-event contract (DESIGN.md
# §18), so their tests must keep exercising the code that enforces them. Floors are per-package only — no
# global gate —
# and sit well under the measured coverage so they catch collapses (a
# skipped suite, a gutted test), not ordinary refactors.
#
#   scripts/cover_check.sh
#
# Run via `make cover-check`; needs only the go toolchain.
set -eu

# package floor%
floors="
github.com/codsearch/cod/internal/accuracy 60
github.com/codsearch/cod/internal/influence 90
github.com/codsearch/cod/internal/query 75
github.com/codsearch/cod/internal/obs/eventlog 65
github.com/codsearch/cod/cmd/codlog 60
"

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

fail=0
echo "$floors" | while read -r pkg floor; do
    [ -n "$pkg" ] || continue
    profile="$workdir/$(basename "$pkg").out"
    go test -coverprofile="$profile" "$pkg" >/dev/null
    total=$(go tool cover -func="$profile" | awk '/^total:/ {gsub(/%/, "", $3); print $3}')
    if [ -z "$total" ]; then
        echo "cover-check: FAIL: no coverage total for $pkg" >&2
        exit 1
    fi
    ok=$(awk -v t="$total" -v f="$floor" 'BEGIN {print (t >= f) ? 1 : 0}')
    if [ "$ok" != 1 ]; then
        echo "cover-check: FAIL: $pkg at ${total}% (floor ${floor}%)" >&2
        exit 1
    fi
    echo "cover-check: $pkg ${total}% (floor ${floor}%)"
done || fail=1

[ "$fail" = 0 ] || exit 1
echo "cover-check: PASS"
