#!/bin/sh
# End-to-end smoke of codserve's serving contract: build, boot on a random
# port, wait for readiness, exercise the query endpoints, then SIGTERM and
# assert a clean drain. Run via `make serve-smoke`; CI runs it on every
# push. Needs only POSIX sh + curl.
set -eu

workdir=$(mktemp -d)
server_pid=""
cleanup() {
    if [ -n "$server_pid" ] && kill -0 "$server_pid" 2>/dev/null; then
        kill -9 "$server_pid" 2>/dev/null || true
    fi
    rm -rf "$workdir"
}
trap cleanup EXIT

fail() {
    echo "serve-smoke: FAIL: $*" >&2
    if [ -f "$workdir/server.log" ]; then
        echo "--- server log ---" >&2
        cat "$workdir/server.log" >&2
    fi
    exit 1
}

echo "serve-smoke: building codserve"
go build -o "$workdir/codserve" ./cmd/codserve

# Port :0 lets the kernel pick; -addr-file publishes the bound address.
# -query-log turns on the durable wide-event log analyzed with codlog below.
"$workdir/codserve" -dataset tiny -theta 4 -addr 127.0.0.1:0 \
    -addr-file "$workdir/addr" -query-timeout 5s -shutdown-grace 5s \
    -query-log "$workdir/qlog" \
    >"$workdir/server.log" 2>&1 &
server_pid=$!

# The process is live before it is ready: wait for the addr file, then for
# /readyz to flip from 503 to 200 while /healthz stays 200 throughout.
for _ in $(seq 1 50); do
    [ -s "$workdir/addr" ] && break
    kill -0 "$server_pid" 2>/dev/null || fail "server exited during startup"
    sleep 0.1
done
[ -s "$workdir/addr" ] || fail "addr file never appeared"
base="http://$(cat "$workdir/addr")"
echo "serve-smoke: server at $base"

code=$(curl -s -o /dev/null -w '%{http_code}' "$base/healthz") || fail "healthz unreachable"
[ "$code" = 200 ] || fail "healthz returned $code before ready"

# /readyz is a JSON contract: {"state":"warming"} at 503 during warmup,
# then {"state":"serving",...} at 200.
ready=""
for _ in $(seq 1 100); do
    code=$(curl -s -o "$workdir/readyz.json" -w '%{http_code}' "$base/readyz" || echo 000)
    if [ "$code" = 200 ]; then ready=yes; break; fi
    [ "$code" = 503 ] || [ "$code" = 000 ] || fail "readyz returned $code during warmup"
    if [ "$code" = 503 ]; then
        grep -q '"state":"warming"' "$workdir/readyz.json" \
            || fail "503 readyz body is not state=warming: $(cat "$workdir/readyz.json")"
    fi
    sleep 0.1
done
[ -n "$ready" ] || fail "server never became ready"
grep -q '"state":"serving"' "$workdir/readyz.json" || fail "ready readyz missing state=serving"
grep -q '"stale_for_ms":0' "$workdir/readyz.json" || fail "ready readyz missing stale_for_ms"
echo "serve-smoke: ready"

# Query endpoints: success, JSON error for bad input, batch. The first
# discover carries a W3C traceparent so the trace-propagation assertions
# below can look for its exact trace ID.
trace_id="4bf92f3577b34da6a3ce929d0e0e4736"
curl -sf -H "traceparent: 00-$trace_id-00f067aa0ba902b7-01" "$base/discover?q=0" \
    | grep -q '"query":0' || fail "discover q=0"
code=$(curl -s -o "$workdir/err.json" -w '%{http_code}' "$base/discover?q=abc")
[ "$code" = 400 ] || fail "malformed q returned $code"
grep -q '"error"' "$workdir/err.json" || fail "400 body is not a JSON error"
curl -sf -X POST -d '{"queries":[{"q":0,"attr":0},{"q":1,"attr":0}]}' "$base/batch" \
    | grep -q '"query":1' || fail "batch"
code=$(curl -s -o /dev/null -w '%{http_code}' "$base/nope")
[ "$code" = 404 ] || fail "unknown route returned $code"
# Expression mode: the normalized expression must flow into the wide event
# and the flight recorder.
curl -sf "$base/discover?q=0%20and%20node%3D0" \
    | grep -q '"expr"' || fail "expression discover"
echo "serve-smoke: endpoints ok"

# Flight recorder: /debug/queries must retain the traced discover with the
# propagated trace ID and at least one plan-step span, and the per-query
# slog line must carry the same trace_id.
curl -sf "$base/debug/queries" >"$workdir/queries.json" || fail "/debug/queries unreachable"
grep -q "\"trace_id\": \"$trace_id\"" "$workdir/queries.json" \
    || fail "propagated traceparent id $trace_id not in /debug/queries"
grep -q '"kind"' "$workdir/queries.json" || fail "no plan-step spans in /debug/queries"
grep -q '"outcome"' "$workdir/queries.json" || fail "step spans carry no outcomes"
curl -sf "$base/debug/queries?format=text" >"$workdir/queries.txt" \
    || fail "/debug/queries?format=text unreachable"
grep -q "trace=$trace_id" "$workdir/queries.txt" \
    || fail "text rendering missing trace=$trace_id"
grep -q "epoch=" "$workdir/queries.txt" || fail "text rendering missing epoch="
grep -q 'expr="' "$workdir/queries.txt" \
    || fail "text rendering missing the expression-mode expr="
grep -q "trace_id=$trace_id" "$workdir/server.log" \
    || fail "server log line missing trace_id=$trace_id"
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "$base/debug/queries")
[ "$code" = 405 ] || fail "POST /debug/queries returned $code, want 405"
echo "serve-smoke: flight recorder ok"

# Query-event pipeline, live side: the streaming aggregator serves
# /debug/querystats, and /metrics renders the event histogram with an
# exemplar trace ID on a bucket.
curl -sf "$base/debug/querystats" >"$workdir/querystats.json" \
    || fail "/debug/querystats unreachable"
grep -q '"groups"' "$workdir/querystats.json" || fail "querystats missing groups"
grep -q '"p99_ms"' "$workdir/querystats.json" || fail "querystats missing percentiles"
curl -sf "$base/metrics" >"$workdir/metrics1.txt" || fail "metrics unreachable"
grep -q '^# TYPE cod_query_event_seconds histogram' "$workdir/metrics1.txt" \
    || fail "metrics missing the query-event histogram"
grep -q '# {trace_id="' "$workdir/metrics1.txt" \
    || fail "metrics missing exemplar trace IDs"
grep -q "trace_id=\"$trace_id\"" "$workdir/metrics1.txt" \
    || fail "traced query $trace_id not an exemplar on any bucket"
grep -q '^cod_query_events_written ' "$workdir/metrics1.txt" \
    || fail "metrics missing the event-sink gauges"
echo "serve-smoke: query-event pipeline ok"

# Graceful drain: start a slow request (codr reclusters per query), give it
# a moment to be admitted, then SIGTERM. The server must finish the
# in-flight response and exit 0.
curl -s -o "$workdir/inflight.json" "$base/discover?q=0&method=codr" &
curl_pid=$!
sleep 0.2
kill -TERM "$server_pid"
wait "$curl_pid" || fail "in-flight request dropped during drain"
grep -q '"query":0' "$workdir/inflight.json" || fail "in-flight response truncated"
if wait "$server_pid"; then
    server_pid=""
else
    fail "server exited nonzero on SIGTERM"
fi
grep -q "drained cleanly" "$workdir/server.log" || fail "drain not logged"
echo "serve-smoke: phase 1 (local build) ok"

# --- Query-event log, offline side ----------------------------------------
# The drained server fsynced its event log; codlog must find the traced
# query, summarize the log, and replay the logged query byte-identically
# against an index rebuilt from the same flags.
echo "serve-smoke: building codlog"
go build -o "$workdir/codlog" ./cmd/codlog

"$workdir/codlog" -log "$workdir/qlog" grep "$trace_id" >"$workdir/grep.txt" \
    || fail "codlog grep $trace_id"
grep -q "trace=$trace_id" "$workdir/grep.txt" || fail "codlog grep output missing the trace"
grep -q "step " "$workdir/grep.txt" || fail "codlog grep output missing plan steps"

"$workdir/codlog" -log "$workdir/qlog" top >"$workdir/top.txt" || fail "codlog top"
grep -q "PRED" "$workdir/top.txt" || fail "codlog top missing header"
grep -q "event(s) in" "$workdir/top.txt" || fail "codlog top missing scan summary"

"$workdir/codlog" -log "$workdir/qlog" percentiles >"$workdir/pct.txt" \
    || fail "codlog percentiles"
grep -q "P99" "$workdir/pct.txt" || fail "codlog percentiles missing header"
grep -q "CODL" "$workdir/pct.txt" || fail "codlog percentiles missing the CODL group"

# Replay flags mirror the phase-1 server build (tiny, theta 4, defaults
# elsewhere); the logged per-query seed makes the re-run deterministic.
"$workdir/codlog" -log "$workdir/qlog" replay -dataset tiny -theta 4 "$trace_id" \
    >"$workdir/replay.txt" || fail "codlog replay diverged: $(cat "$workdir/replay.txt")"
grep -q "result: byte-identical" "$workdir/replay.txt" \
    || fail "replay result not byte-identical: $(cat "$workdir/replay.txt")"
grep -q "replay OK" "$workdir/replay.txt" || fail "replay did not report OK"
echo "serve-smoke: codlog ok"

# --- Phase 2: store-fed serving -------------------------------------------
# codpublish publishes a verified snapshot into a blob store; codserve
# -index-store fetches it, serves it, and hot-swaps when a newer epoch
# lands — all observable through /readyz, X-Cod-Epoch, and /metrics.
echo "serve-smoke: building codpublish"
go build -o "$workdir/codpublish" ./cmd/codpublish
store="$workdir/store"

"$workdir/codpublish" -store "$store" -dataset tiny -theta 4 -seed 1 \
    >>"$workdir/server.log" 2>&1 || fail "codpublish epoch 1"

"$workdir/codserve" -dataset tiny -addr 127.0.0.1:0 -addr-file "$workdir/addr2" \
    -index-store "$store" -index-watch 200ms -query-timeout 5s -shutdown-grace 5s \
    >"$workdir/server.log" 2>&1 &
server_pid=$!

for _ in $(seq 1 50); do
    [ -s "$workdir/addr2" ] && break
    kill -0 "$server_pid" 2>/dev/null || fail "store-fed server exited during startup"
    sleep 0.1
done
[ -s "$workdir/addr2" ] || fail "store-fed addr file never appeared"
base="http://$(cat "$workdir/addr2")"
echo "serve-smoke: store-fed server at $base"

ready=""
for _ in $(seq 1 100); do
    code=$(curl -s -o "$workdir/readyz.json" -w '%{http_code}' "$base/readyz" || echo 000)
    if [ "$code" = 200 ]; then ready=yes; break; fi
    sleep 0.1
done
[ -n "$ready" ] || fail "store-fed server never became ready"
grep -q '"state":"serving"' "$workdir/readyz.json" || fail "store-fed readyz missing state=serving"
grep -q '"epoch":1' "$workdir/readyz.json" || fail "store-fed readyz not on epoch 1"
grep -q '"params_hash":"' "$workdir/readyz.json" || fail "store-fed readyz missing params_hash"

# Responses name the epoch that answered them.
curl -sf -D "$workdir/headers.txt" -o /dev/null "$base/discover?q=0" || fail "store-fed discover"
grep -iq '^x-cod-epoch: 1' "$workdir/headers.txt" \
    || fail "X-Cod-Epoch not 1: $(grep -i x-cod-epoch "$workdir/headers.txt" || echo missing)"

# Publish a newer epoch; the watcher must converge and swap without a restart.
"$workdir/codpublish" -store "$store" -dataset tiny -theta 4 -seed 2 \
    >>"$workdir/server.log" 2>&1 || fail "codpublish epoch 2"
swapped=""
for _ in $(seq 1 100); do
    if curl -s "$base/readyz" | grep -q '"epoch":2'; then swapped=yes; break; fi
    sleep 0.1
done
[ -n "$swapped" ] || fail "server never swapped to epoch 2"
curl -sf -D "$workdir/headers.txt" -o /dev/null "$base/discover?q=0" || fail "post-swap discover"
grep -iq '^x-cod-epoch: 2' "$workdir/headers.txt" || fail "queries not served from epoch 2 after swap"
curl -sf "$base/metrics" >"$workdir/metrics.txt" || fail "metrics unreachable"
grep -q '^cod_index_swap_ok_total 2' "$workdir/metrics.txt" || fail "swap counter not at 2"
grep -q '^cod_index_epoch 2' "$workdir/metrics.txt" || fail "epoch gauge not at 2"
echo "serve-smoke: hot swap ok"

kill -TERM "$server_pid"
if wait "$server_pid"; then
    server_pid=""
else
    fail "store-fed server exited nonzero on SIGTERM"
fi
echo "serve-smoke: PASS"
