package cod

import (
	"context"
	"fmt"
	"math/rand/v2"
	"strings"
	"sync/atomic"

	"github.com/codsearch/cod/internal/engine"
	"github.com/codsearch/cod/internal/graph"
	"github.com/codsearch/cod/internal/hac"
	"github.com/codsearch/cod/internal/im"
	"github.com/codsearch/cod/internal/influence"
	"github.com/codsearch/cod/internal/obs"
)

// CanceledError is returned (wrapped) by the *Ctx query APIs when a context
// deadline or cancellation interrupts a query. It carries how many
// Monte-Carlo units completed before the stop; completed work is
// deterministic, only the tail is missing. It unwraps to the context error,
// so errors.Is(err, context.DeadlineExceeded) distinguishes timeouts from
// explicit cancellation.
type CanceledError = influence.CanceledError

// Linkage selects the agglomerative clustering linkage used to build the
// community hierarchy.
type Linkage = hac.Linkage

// Linkage values.
const (
	// UnweightedAverage (UPGMA) is the paper's default linkage.
	UnweightedAverage = hac.UnweightedAverage
	// WeightedAverage is WPGMA.
	WeightedAverage = hac.WeightedAverage
	// Single is single linkage.
	Single = hac.Single
)

// Model selects the influence model used for sampling.
type Model = engine.Model

// Model values.
const (
	// ModelIC is the independent cascade model with weighted-cascade
	// probabilities p(u,v) = 1/deg(v) — the paper's default.
	ModelIC = engine.ICWeightedCascade
	// ModelLT is the linear threshold model with b(u,v) = 1/deg(v).
	ModelLT = engine.LTUniform
)

// Options configures a Searcher. The zero value uses the paper's defaults:
// k = 5, θ = 10 RR graphs per node, β = 1, UPGMA linkage, IC model, seed 0.
type Options struct {
	// K is the required influence rank: the query node must be among the
	// top-K influential nodes of its characteristic community.
	K int
	// Theta is the per-node sampling multiplier θ (Θ = θ·N RR graphs).
	Theta int
	// Beta is the extra weight applied to query-attributed edges when LORE
	// derives the attribute-weighted graph g_ℓ.
	Beta float64
	// Linkage is the agglomerative linkage function.
	Linkage Linkage
	// Seed drives all randomness; equal seeds give identical results.
	Seed uint64
	// Model is the influence model (ModelIC or ModelLT).
	Model Model
	// Balanced rebalances the hierarchy along heavy paths, bounding every
	// node's community chain polylogarithmically on hub-skewed graphs (at
	// the cost of exact agglomerative faithfulness). It cuts HIMOR size and
	// build time dramatically on retweet-like topologies.
	Balanced bool
	// Workers parallelizes the offline sampling phase across goroutines
	// (<= 1 = sequential). Purely a performance knob: results are identical
	// for every Workers value under a fixed Seed.
	Workers int
	// SampleCache bounds the engine's per-attribute RR sample-pool cache
	// (number of resident pools); 0 disables it. With the cache off, every
	// query draws from its own seeded stream exactly as prior releases did.
	// With it on, whole-graph sample pools are generated from per-item seeds
	// derived from (Seed, attribute, epoch) and shared across queries: still
	// fully deterministic (a hit is byte-identical to a miss, independent of
	// arrival order), but a different stream than the cache-off mode.
	SampleCache int
	// CacheHierarchies keeps CODR per-attribute reclustered hierarchies
	// resident across DiscoverGlobal calls. Reclustering is deterministic,
	// so caching never changes answers — it trades memory for latency.
	CacheHierarchies bool
	// Adaptive enables bounded-error staged evaluation: queries grow their
	// RR sample pool in geometric stages and stop as soon as the rank-k
	// decision is certified at confidence 1−Delta (within an Eps margin
	// slack). Off by default; when off, behavior and results are
	// byte-identical to prior releases. A run that reaches the final stage
	// consumes the query stream in exactly the full-budget draw order, so
	// its answer equals the non-adaptive one.
	Adaptive AdaptiveOptions
}

// AdaptiveOptions configures bounded-error staged evaluation (see
// Options.Adaptive); the zero value is off, and an enabled zero value uses
// ε = δ = 0.05 with 4 geometric stages.
type AdaptiveOptions = engine.Adaptive

// Community is the result of a characteristic-community query.
type Community struct {
	// Nodes of C*(q) in ascending order; empty when Found is false.
	Nodes []NodeID
	// Found reports whether any hierarchy community had the query top-k.
	Found bool
	// FromIndex is true when the HIMOR index answered the query directly.
	FromIndex bool
	// Rank is the query node's influence rank within the community (1 = most
	// influential); 0 when not found.
	Rank int
}

// RangeError reports a query argument outside the graph's range. Its message
// keeps the historical "cod: <what> <value> out of range [0,<n>)" shape;
// when the graph has an attribute-name registry, an attribute error also
// lists the known names so callers can self-correct. HTTP front ends map it
// to a 400 with the structured fields.
type RangeError struct {
	// What names the argument: "query node" or "attribute".
	What string
	// Value is the rejected argument.
	Value int64
	// N is the exclusive upper bound of the valid range.
	N int
	// Known lists the registered attribute names (attribute errors on graphs
	// with a name registry only).
	Known []string
}

func (e *RangeError) Error() string {
	msg := fmt.Sprintf("cod: %s %d out of range [0,%d)", e.What, e.Value, e.N)
	if len(e.Known) > 0 {
		msg += fmt.Sprintf(" (known attributes: %s)", strings.Join(e.Known, ", "))
	}
	return msg
}

// Size returns |C*| (0 when not found).
func (c Community) Size() int { return len(c.Nodes) }

// Contains reports whether v belongs to the community.
func (c Community) Contains(v NodeID) bool {
	for _, u := range c.Nodes {
		if u == v {
			return true
		}
	}
	return false
}

// Searcher answers COD queries over one graph. Construction runs the
// offline phase: agglomerative hierarchical clustering of the graph and
// compressed HIMOR index construction; queries compile to engine plans and
// execute over pooled scratch arenas. A Searcher is safe for concurrent use:
// each query draws its own deterministic stream and per-query scratch.
type Searcher struct {
	g    *Graph
	opts Options
	eng  *engine.Engine
	seq  atomic.Uint64
}

// NewSearcher builds the hierarchy and HIMOR index for g.
func NewSearcher(g *Graph, opts Options) (*Searcher, error) {
	return NewSearcherCtx(context.Background(), g, opts)
}

// NewSearcherCtx is NewSearcher with a cancellable offline phase: the
// clustering merge loop and HIMOR RR sampling poll ctx.Err() at bounded
// intervals, so a serving process can abandon warmup on shutdown. An
// uncancelled build is identical to NewSearcher for the same options.
func NewSearcherCtx(ctx context.Context, g *Graph, opts Options) (*Searcher, error) {
	if g == nil || g.N() == 0 {
		return nil, fmt.Errorf("cod: empty graph")
	}
	params := engine.Params{K: opts.K, Theta: opts.Theta, Beta: opts.Beta, Linkage: opts.Linkage,
		Seed: opts.Seed, Model: opts.Model, Balanced: opts.Balanced, Workers: opts.Workers}
	cfg := engine.Config{SampleCache: opts.SampleCache, CacheAttrTrees: opts.CacheHierarchies,
		Adaptive: opts.Adaptive}
	eng, err := engine.Build(ctx, g.internalGraph(), params, cfg)
	if err != nil {
		return nil, err
	}
	return &Searcher{g: g, opts: opts, eng: eng}, nil
}

// Discover finds the characteristic community of q for the query attribute
// using the fully optimized CODL pipeline (LORE + HIMOR, Algorithm 3).
func (s *Searcher) Discover(q NodeID, attr AttrID) (Community, error) {
	return s.DiscoverCtx(context.Background(), q, attr)
}

// DiscoverCtx is Discover with cancellation: every long-running phase (LORE
// reclustering, restricted RR sampling, compressed evaluation) polls
// ctx.Err() at bounded intervals. A canceled query returns an error that
// wraps both a *CanceledError (partial progress) and the context error; the
// query consumes its deterministic seed either way, so a retried query on
// the same Searcher draws a fresh stream. Uncancelled results are
// byte-identical to Discover.
func (s *Searcher) DiscoverCtx(ctx context.Context, q NodeID, attr AttrID) (Community, error) {
	return s.discoverSpec(ctx, engine.Spec{Variant: engine.VariantCODL, Q: q, Attr: attr}, attr)
}

// discoverSpec runs one typed query through the engine, preserving the
// historical sequence exactly: validate (counting rejects), draw the
// per-query seed, stamp the trace ID, execute the compiled plan, count the
// outcome. Every Discover entrypoint — legacy and DSL — routes through it,
// so a single-attribute DSL query is byte-identical (trace IDs included) to
// its legacy counterpart.
func (s *Searcher) discoverSpec(ctx context.Context, sp engine.Spec, vattr AttrID) (Community, error) {
	rec := obs.FromContext(ctx)
	if err := s.validate(sp.Q, vattr); err != nil {
		rec.CountQuery(err)
		return Community{}, err
	}
	return s.discoverSeeded(ctx, sp, s.nextSeed())
}

// discoverSeeded executes a validated spec with an explicit per-query seed:
// the shared tail of the live path (which draws the seed from the sequence)
// and the replay path (which re-supplies a logged one).
func (s *Searcher) discoverSeeded(ctx context.Context, sp engine.Spec, seed uint64) (Community, error) {
	rec := obs.FromContext(ctx)
	rec.EnsureTraceID(seed)
	com, err := s.eng.Execute(ctx, s.eng.CompileSpec(sp), graph.NewRand(seed))
	rec.CountQuery(err)
	if err != nil {
		return Community{}, err
	}
	return Community{Nodes: com.Nodes, Found: com.Found, FromIndex: com.FromIndex, Rank: com.Rank}, nil
}

// ReplaySeededCtx re-runs a previously logged query: expr is the query's
// normalized expression (it must carry a node= knob — event logs record
// one), seed the logged per-query seed. The query executes outside the
// Searcher's seed sequence, so replays never perturb live traffic's
// deterministic streams, and a replay on an identically built Searcher is
// byte-identical to the original execution — community, rank, and
// seed-derived trace ID alike.
func (s *Searcher) ReplaySeededCtx(ctx context.Context, expr string, seed uint64) (Community, error) {
	pq, err := s.Prepare(expr)
	if err != nil {
		return Community{}, err
	}
	if !pq.hasNode {
		return Community{}, fmt.Errorf("cod: replay expression %q needs a node= knob", expr)
	}
	sp := pq.spec(pq.node)
	if err := s.validate(sp.Q, pq.attr); err != nil {
		return Community{}, err
	}
	return s.discoverSeeded(ctx, sp, seed)
}

// DiscoverUnattributed finds the characteristic community of q ignoring
// attributes (the paper's CODU variant).
func (s *Searcher) DiscoverUnattributed(q NodeID) (Community, error) {
	return s.DiscoverUnattributedCtx(context.Background(), q)
}

// DiscoverUnattributedCtx is DiscoverUnattributed with cancellation (see
// DiscoverCtx).
func (s *Searcher) DiscoverUnattributedCtx(ctx context.Context, q NodeID) (Community, error) {
	return s.discoverSpec(ctx, engine.Spec{Variant: engine.VariantCODU, Q: q}, 0)
}

// DiscoverGlobal finds the characteristic community of q by globally
// reclustering the attribute-weighted graph (the paper's CODR variant).
// It is substantially slower than Discover on large graphs.
func (s *Searcher) DiscoverGlobal(q NodeID, attr AttrID) (Community, error) {
	return s.DiscoverGlobalCtx(context.Background(), q, attr)
}

// DiscoverGlobalCtx is DiscoverGlobal with cancellation: the global
// recluster's merge loop, the sampling loop and the evaluation all poll
// ctx.Err() at bounded intervals (see DiscoverCtx).
func (s *Searcher) DiscoverGlobalCtx(ctx context.Context, q NodeID, attr AttrID) (Community, error) {
	return s.discoverSpec(ctx, engine.Spec{Variant: engine.VariantCODR, Q: q, Attr: attr}, attr)
}

// EstimateInfluence estimates σ_g(v), the expected IC spread of v over the
// whole graph, from θ·N shared RR sets.
func (s *Searcher) EstimateInfluence(v NodeID) (float64, error) {
	return s.EstimateInfluenceCtx(context.Background(), v)
}

// EstimateInfluenceCtx is EstimateInfluence with cancellation: the sampling
// loop polls ctx.Err() once per bounded interval and aborts with a
// *CanceledError carrying the completed sample count.
func (s *Searcher) EstimateInfluenceCtx(ctx context.Context, v NodeID) (float64, error) {
	if err := s.validate(v, 0); err != nil {
		return 0, err
	}
	theta := s.opts.Theta
	if theta <= 0 {
		theta = 10
	}
	sampler := engine.NewGraphSampler(s.g.internalGraph(), s.opts.Model, s.nextRand())
	total := theta * s.g.N()
	span := obs.FromContext(ctx).StartSpan(obs.StageRRSample)
	count := 0
	for i := 0; i < total; i++ {
		if i%influence.PollEvery == 0 {
			if err := ctx.Err(); err != nil {
				span.EndItems(i)
				return 0, &CanceledError{Op: "cod: influence estimation", Done: i, Total: total, Cause: err}
			}
		}
		for _, u := range sampler.RRGraph().Nodes {
			if u == v {
				count++
				break
			}
		}
	}
	span.EndItems(total)
	return influence.InfluenceFromCount(count, total, s.g.N()), nil
}

// MaximizeInfluence runs RIS-based influence maximization: it returns up to
// k seed nodes greedily maximizing expected IC spread over the whole graph,
// plus the estimated spread of that seed set. This is the global
// counterpart to Discover: IM asks "who matters most overall", COD asks
// "where does this node matter". Selection stops early when additional
// seeds bring no marginal coverage.
func (s *Searcher) MaximizeInfluence(k int) ([]NodeID, float64, error) {
	return s.MaximizeInfluenceCtx(context.Background(), k)
}

// MaximizeInfluenceCtx is MaximizeInfluence with cancellation: the RR pool
// sampling polls ctx.Err() at a bounded interval (the greedy selection over
// the pool is comparatively cheap and runs to completion).
func (s *Searcher) MaximizeInfluenceCtx(ctx context.Context, k int) ([]NodeID, float64, error) {
	if k < 1 || k > s.g.N() {
		return nil, 0, fmt.Errorf("cod: k = %d out of range [1,%d]", k, s.g.N())
	}
	theta := s.opts.Theta
	if theta <= 0 {
		theta = 10
	}
	sampler := engine.NewGraphSampler(s.g.internalGraph(), s.opts.Model, s.nextRand())
	pool, err := influence.BatchCtx(ctx, sampler, theta*s.g.N())
	if err != nil {
		return nil, 0, err
	}
	res, err := im.Select(s.g.internalGraph(), pool, k)
	if err != nil {
		return nil, 0, err
	}
	return res.Seeds, res.Spread(s.g.N()), nil
}

// InfluenceRank returns the precomputed HIMOR rank of q inside its i-th
// enclosing community (0 = smallest), plus that community's size; it errors
// when i is out of range. This exposes the index for inspection.
func (s *Searcher) InfluenceRank(q NodeID, i int) (rank, size int, err error) {
	if err := s.validate(q, 0); err != nil {
		return 0, 0, err
	}
	t := s.eng.Tree()
	anc := t.Ancestors(t.LeafOf(q))
	if i < 0 || i >= len(anc) {
		return 0, 0, fmt.Errorf("cod: ancestor index %d out of range [0,%d)", i, len(anc))
	}
	return s.eng.Index().Rank(q, anc[i]), t.Size(anc[i]), nil
}

// HierarchyDepth returns |H(q)|: the number of communities containing q in
// the non-attributed hierarchy.
func (s *Searcher) HierarchyDepth(q NodeID) (int, error) {
	if err := s.validate(q, 0); err != nil {
		return 0, err
	}
	t := s.eng.Tree()
	return len(t.Ancestors(t.LeafOf(q))), nil
}

// IndexBytes reports the approximate HIMOR index memory footprint.
func (s *Searcher) IndexBytes() int64 { return s.eng.Index().ApproxBytes() }

// Validate reports whether (q, attr) is a well-formed query against this
// Searcher's graph, using the same error shape as every query API: callers
// (e.g. HTTP front ends) can reject malformed input before spending any
// query work.
func (s *Searcher) Validate(q NodeID, attr AttrID) error { return s.validate(q, attr) }

func (s *Searcher) validate(q NodeID, attr AttrID) error {
	if q < 0 || int(q) >= s.g.N() {
		return &RangeError{What: "query node", Value: int64(q), N: s.g.N()}
	}
	if attr < 0 || (s.g.NumAttrs() > 0 && int(attr) >= s.g.NumAttrs()) {
		return &RangeError{What: "attribute", Value: int64(attr), N: s.g.NumAttrs(),
			Known: s.g.AttrNames()}
	}
	return nil
}

// Engine exposes the underlying query engine (epoch, caches, plan API).
func (s *Searcher) Engine() *engine.Engine { return s.eng }

// Graph returns the attributed graph this Searcher queries. Index
// distribution serializes it alongside the index so a fetched snapshot is
// self-contained.
func (s *Searcher) Graph() *Graph { return s.g }

// nextSeed derives a fresh deterministic per-query seed. The sequence
// counter is atomic, so concurrent queries each get a distinct stream; the
// mapping from arrival order to stream is first-come-first-seeded. The seed
// doubles as the query's trace-ID source: it is drawn after validation and
// never conditionally on instrumentation, so instrumented runs consume the
// sequence identically to plain ones.
func (s *Searcher) nextSeed() uint64 {
	return graph.ItemSeed(s.opts.Seed, int(s.seq.Add(1)-1))
}

// nextRand derives a fresh deterministic stream per query (see nextSeed).
func (s *Searcher) nextRand() *rand.Rand {
	return graph.NewRand(s.nextSeed())
}
